"""Regression tests: a seeded search must be bit-for-bit reproducible."""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.tycos import Tycos, tycos_l, tycos_lm, tycos_lmn, tycos_ln


def _planted_pair(seed=3, n=400, start=120, m=100, delay=6):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    seg = rng.uniform(0, 1, m)
    x[start : start + m] = seg
    y[start + delay : start + delay + m] = np.sin(6 * seg) / 2 + 0.5 + 0.02 * rng.normal(size=m)
    return x, y


def _config(**kwargs):
    defaults = dict(
        sigma=0.4,
        s_min=20,
        s_max=150,
        td_max=10,
        init_delay_step=1,
        significance_permutations=5,
        jitter=1e-6,
        seed=0,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _fingerprint(result):
    """Everything observable about a result, as exact (bit-level) values."""
    return [
        (r.window.start, r.window.end, r.window.delay, r.mi.hex(), r.nmi.hex())
        for r in result.windows
    ]


class TestSearchDeterminism:
    def test_same_engine_twice(self):
        x, y = _planted_pair()
        engine = Tycos(_config())
        first = engine.search(x, y)
        second = engine.search(x, y)
        assert _fingerprint(first) == _fingerprint(second)

    def test_fresh_engines_agree(self):
        x, y = _planted_pair()
        first = Tycos(_config()).search(x, y)
        second = Tycos(_config()).search(x, y)
        assert _fingerprint(first) == _fingerprint(second)
        assert first.stats.windows_evaluated == second.stats.windows_evaluated
        assert first.stats.lahc_iterations == second.stats.lahc_iterations

    @pytest.mark.parametrize("variant", [tycos_l, tycos_ln, tycos_lm, tycos_lmn])
    def test_all_variants_deterministic(self, variant):
        x, y = _planted_pair()
        cfg = _config()
        assert _fingerprint(variant(cfg).search(x, y)) == _fingerprint(variant(cfg).search(x, y))

    def test_input_arrays_not_mutated(self):
        x, y = _planted_pair()
        x_copy, y_copy = x.copy(), y.copy()
        Tycos(_config()).search(x, y)
        np.testing.assert_array_equal(x, x_copy)
        np.testing.assert_array_equal(y, y_copy)

    def test_different_seeds_may_share_findings_but_run_independently(self):
        # Not an equality assertion -- both runs must simply complete and
        # stay internally deterministic under their own seed.
        x, y = _planted_pair()
        for seed in (0, 1):
            cfg = _config(seed=seed)
            assert _fingerprint(Tycos(cfg).search(x, y)) == _fingerprint(Tycos(cfg).search(x, y))

    def test_topk_deterministic(self):
        x, y = _planted_pair()
        cfg = _config(significance_permutations=0)
        first = Tycos(cfg).search_topk(x, y, k_top=3)
        second = Tycos(cfg).search_topk(x, y, k_top=3)
        assert _fingerprint(first) == _fingerprint(second)

"""Tests for result sets and window aggregation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import OverlapPolicy, ResultSet, WindowResult, merge_overlapping
from repro.core.window import TimeDelayWindow


def _res(start, end, delay=0, nmi=0.5):
    return WindowResult(window=TimeDelayWindow(start, end, delay), mi=nmi, nmi=nmi)


class TestResultSetContainment:
    def test_disjoint_windows_coexist(self):
        rs = ResultSet()
        assert rs.insert(_res(0, 10))
        assert rs.insert(_res(20, 30))
        assert len(rs) == 2

    def test_contained_weaker_window_rejected(self):
        rs = ResultSet()
        rs.insert(_res(0, 20, nmi=0.8))
        assert not rs.insert(_res(5, 15, nmi=0.5))
        assert len(rs) == 1

    def test_contained_stronger_window_evicts(self):
        rs = ResultSet()
        rs.insert(_res(0, 20, nmi=0.5))
        assert rs.insert(_res(5, 15, nmi=0.9))
        assert len(rs) == 1
        assert rs.windows()[0] == TimeDelayWindow(5, 15)

    def test_overlap_without_containment_allowed(self):
        rs = ResultSet()  # CONTAINMENT policy
        rs.insert(_res(0, 10))
        assert rs.insert(_res(5, 15))
        assert len(rs) == 2

    def test_no_containment_invariant(self):
        # The problem statement: no window in S contains another.
        rs = ResultSet()
        for s, e, v in [(0, 30, 0.4), (5, 10, 0.9), (2, 25, 0.6), (40, 50, 0.3)]:
            rs.insert(_res(s, e, nmi=v))
        windows = rs.windows()
        for a in windows:
            for b in windows:
                if a != b:
                    assert not a.contains(b)


class TestResultSetStrict:
    def test_strict_rejects_any_overlap(self):
        rs = ResultSet(policy=OverlapPolicy.STRICT)
        rs.insert(_res(0, 10, nmi=0.8))
        assert not rs.insert(_res(10, 20, nmi=0.5))
        assert rs.insert(_res(11, 20, nmi=0.5))

    def test_jaccard_policy(self):
        rs = ResultSet(policy=OverlapPolicy.JACCARD, jaccard_threshold=0.5)
        rs.insert(_res(0, 10, nmi=0.8))
        # Jaccard of [0,10] and [2,12] = 9/13 > 0.5 -> conflict.
        assert not rs.insert(_res(2, 12, nmi=0.5))
        # Jaccard of [0,10] and [8,30] = 3/31 < 0.5 -> fine.
        assert rs.insert(_res(8, 30, nmi=0.5))


class TestResultSetAccessors:
    def test_results_sorted_by_start(self):
        rs = ResultSet()
        rs.insert(_res(20, 30))
        rs.insert(_res(0, 10))
        assert [r.window.start for r in rs.results()] == [0, 20]

    def test_delays(self):
        rs = ResultSet()
        rs.insert(_res(0, 10, delay=5))
        rs.insert(_res(20, 30, delay=-3))
        assert sorted(rs.delays()) == [-3, 5]

    def test_iteration(self):
        rs = ResultSet()
        rs.insert(_res(0, 10))
        assert [r.window for r in rs] == [TimeDelayWindow(0, 10)]


class TestMergeOverlapping:
    def test_merges_chain(self):
        windows = [TimeDelayWindow(0, 10), TimeDelayWindow(5, 20), TimeDelayWindow(18, 30)]
        merged = merge_overlapping(windows)
        assert merged == [TimeDelayWindow(0, 30)]

    def test_keeps_disjoint(self):
        windows = [TimeDelayWindow(0, 10), TimeDelayWindow(20, 30)]
        assert merge_overlapping(windows) == windows

    def test_dominant_delay_kept(self):
        windows = [TimeDelayWindow(0, 5, delay=2), TimeDelayWindow(3, 30, delay=7)]
        merged = merge_overlapping(windows)
        assert merged[0].delay == 7  # larger window dominates

    def test_clamps_delay_to_series(self):
        windows = [TimeDelayWindow(0, 40, delay=0), TimeDelayWindow(35, 95, delay=8)]
        merged = merge_overlapping(windows, n=100)
        assert len(merged) == 1
        w = merged[0]
        assert w.y_end < 100 and w.y_start >= 0

    def test_empty(self):
        assert merge_overlapping([]) == []

    @given(st.lists(st.tuples(st.integers(0, 80), st.integers(0, 20)), max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_property_merged_are_disjoint_and_cover(self, spans):
        windows = [TimeDelayWindow(s, s + l) for s, l in spans]
        merged = merge_overlapping(windows)
        # Pairwise disjoint.
        for i, a in enumerate(merged):
            for b in merged[i + 1 :]:
                assert not a.overlaps(b)
        # Every original index is covered.
        covered = set()
        for w in merged:
            covered.update(range(w.start, w.end + 1))
        for w in windows:
            assert set(range(w.start, w.end + 1)) <= covered

"""Tests for window scorers and the top-K filter."""

import pytest

from repro.core.config import TycosConfig
from repro.core.thresholds import (
    BatchScorer,
    IncrementalScorer,
    TopKFilter,
    make_scorer,
)
from repro.core.window import PairView, TimeDelayWindow


@pytest.fixture
def pair(rng):
    n = 400
    x = rng.normal(size=n)
    y = 0.7 * x + 0.7 * rng.normal(size=n)
    return PairView(x, y)


@pytest.fixture
def config():
    return TycosConfig(sigma=0.3, s_min=16, s_max=100, td_max=10)


class TestBatchScorer:
    def test_score_components_consistent(self, pair, config):
        scorer = BatchScorer(pair, config)
        score = scorer.score(TimeDelayWindow(50, 120))
        assert 0.0 <= score.nmi <= 1.0
        assert score.ratio >= score.nmi or score.ratio == pytest.approx(score.nmi)

    def test_cache_hits(self, pair, config):
        scorer = BatchScorer(pair, config)
        w = TimeDelayWindow(10, 60)
        scorer.score(w)
        scorer.score(w)
        assert scorer.evaluations == 1
        assert scorer.cache_hits == 1

    def test_value_respects_normalized_flag(self, pair):
        w = TimeDelayWindow(50, 150)
        norm = BatchScorer(pair, TycosConfig(sigma=0.3, s_min=16, s_max=200, td_max=5))
        raw = BatchScorer(
            pair, TycosConfig(sigma=0.3, s_min=16, s_max=200, td_max=5, use_normalized=False)
        )
        assert norm.value(w) == pytest.approx(norm.score(w).ratio)
        assert raw.value(w) == pytest.approx(raw.score(w).mi)

    def test_clear_cache(self, pair, config):
        scorer = BatchScorer(pair, config)
        w = TimeDelayWindow(10, 60)
        scorer.score(w)
        scorer.clear_cache()
        scorer.score(w)
        assert scorer.evaluations == 2


class TestIncrementalScorer:
    def test_matches_batch_scorer_exactly(self, pair, config):
        batch = BatchScorer(pair, config)
        incr = IncrementalScorer(pair, config)
        windows = [
            TimeDelayWindow(50, 120),
            TimeDelayWindow(50, 121),   # grow end
            TimeDelayWindow(49, 121),   # grow start
            TimeDelayWindow(55, 110),   # shrink both
            TimeDelayWindow(55, 110, delay=3),  # delay change (one-off)
            TimeDelayWindow(60, 130, delay=3),  # repeated delay -> migrate
            TimeDelayWindow(60, 131, delay=3),
        ]
        for w in windows:
            assert incr.score(w).mi == pytest.approx(batch.score(w).mi, abs=1e-12), w

    def test_disjoint_jump_resets(self, pair, config):
        incr = IncrementalScorer(pair, config)
        batch = BatchScorer(pair, config)
        a = TimeDelayWindow(0, 40)
        b = TimeDelayWindow(300, 360)
        incr.score(a)
        assert incr.score(b).mi == pytest.approx(batch.score(b).mi, abs=1e-12)

    def test_factory(self, pair, config):
        assert isinstance(make_scorer(pair, config, incremental=True), IncrementalScorer)
        scorer = make_scorer(pair, config, incremental=False)
        assert isinstance(scorer, BatchScorer)
        assert not isinstance(scorer, IncrementalScorer)


class TestTopKFilter:
    def test_fills_then_tightens(self):
        topk = TopKFilter(capacity=2)
        assert topk.sigma == 0.0
        topk.offer(TimeDelayWindow(0, 10), 0.3)
        topk.offer(TimeDelayWindow(20, 30), 0.5)
        assert topk.sigma == 0.3
        assert topk.offer(TimeDelayWindow(40, 50), 0.4)
        assert topk.sigma == 0.4
        assert not topk.offer(TimeDelayWindow(60, 70), 0.35)

    def test_windows_ordered_best_first(self):
        topk = TopKFilter(capacity=3)
        for i, v in enumerate((0.2, 0.9, 0.5)):
            topk.offer(TimeDelayWindow(i * 10, i * 10 + 5), v)
        values = [v for _, v in topk.windows()]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TopKFilter(capacity=0)

    def test_len(self):
        topk = TopKFilter(capacity=5)
        topk.offer(TimeDelayWindow(0, 5), 0.1)
        assert len(topk) == 1

"""End-to-end tests of the four TYCOS variants."""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.tycos import Tycos, tycos_l, tycos_lm, tycos_lmn, tycos_ln
from repro.experiments.similarity import detects


def _planted_pair(seed=0, n=500, start=200, m=120, delay=8):
    """Noise with one strong (shuffled) relation planted at a known delay."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    seg = rng.uniform(0, 1, m)
    x[start : start + m] = seg
    y[start + delay : start + delay + m] = np.sin(6 * seg) / 2 + 0.52 + 0.02 * rng.normal(size=m)
    return x, y


def _config(**kwargs):
    defaults = dict(
        sigma=0.4,
        s_min=20,
        s_max=150,
        td_max=12,
        init_delay_step=1,
        significance_permutations=10,
        seed=0,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


ALL_VARIANTS = [tycos_l, tycos_ln, tycos_lm, tycos_lmn]


class TestVariantNames:
    def test_names(self):
        cfg = _config()
        assert tycos_l(cfg).name == "TYCOS_L"
        assert tycos_ln(cfg).name == "TYCOS_LN"
        assert tycos_lm(cfg).name == "TYCOS_LM"
        assert tycos_lmn(cfg).name == "TYCOS_LMN"


class TestSearchFindsPlantedWindow:
    @pytest.mark.parametrize("factory", ALL_VARIANTS)
    def test_finds_delayed_relation(self, factory):
        x, y = _planted_pair()
        result = factory(_config()).search(x, y)
        assert len(result.windows) > 0
        from repro.core.window import TimeDelayWindow

        truth = TimeDelayWindow(200, 319, delay=8)
        assert detects([r.window for r in result.windows], truth, delay_tol=2)

    @pytest.mark.parametrize("factory", ALL_VARIANTS)
    def test_silent_on_pure_noise(self, factory):
        # A hill-climbing search is an extreme-value machine: over the few
        # thousand windows it probes, the small-sample null of the score
        # reaches ~0.6 occasionally, so a robust no-signal gate needs both
        # a high sigma and a meaningful permutation test.
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, 400)
        y = rng.uniform(0, 1, 400)
        cfg = _config(sigma=0.65, s_min=24, significance_permutations=40)
        result = factory(cfg).search(x, y)
        assert len(result.windows) == 0

    def test_all_accepted_windows_clear_sigma(self):
        x, y = _planted_pair()
        cfg = _config()
        result = tycos_lmn(cfg).search(x, y)
        for r in result.windows:
            assert r.nmi >= min(cfg.sigma, 1.0) - 1e-9

    def test_windows_respect_constraints(self):
        x, y = _planted_pair()
        cfg = _config()
        result = tycos_lmn(cfg).search(x, y)
        for r in result.windows:
            assert r.window.is_feasible(len(x), cfg.s_min, cfg.s_max, cfg.td_max)

    def test_no_containment_in_result_set(self):
        x, y = _planted_pair()
        result = tycos_l(_config()).search(x, y)
        windows = [r.window for r in result.windows]
        for a in windows:
            for b in windows:
                if a != b:
                    assert not a.contains(b)


class TestDeterminism:
    def test_same_seed_same_result(self):
        x, y = _planted_pair()
        cfg = _config()
        a = tycos_lmn(cfg).search(x, y)
        b = tycos_lmn(cfg).search(x, y)
        assert [r.window for r in a.windows] == [r.window for r in b.windows]


class TestBatchedSeeding:
    def test_plain_variant_seeding_matches_scalar_path(self):
        """Batched delay-grid seeding is a pure perf change for TYCOS_L."""
        x, y = _planted_pair()
        cfg = _config()
        batched = Tycos(cfg, use_noise=False, batched_scoring=True).search(x, y)
        scalar = Tycos(cfg, use_noise=False, batched_scoring=False).search(x, y)
        assert [(r.window, r.mi, r.nmi) for r in batched.windows] == [
            (r.window, r.mi, r.nmi) for r in scalar.windows
        ]


class TestStats:
    def test_stats_populated(self):
        x, y = _planted_pair()
        result = tycos_lmn(_config()).search(x, y)
        s = result.stats
        assert s.windows_evaluated > 0
        assert s.restarts > 0
        assert s.runtime_seconds > 0

    def test_engine_stats_populated_at_large_windows(self):
        # The hybrid scorer routes windows below its size cutoff to the
        # batch path; engine counters only move once windows exceed it.
        x, y = _planted_pair(n=900, start=200, m=400, delay=3)
        cfg = _config(s_min=120, s_max=400, td_max=4, significance_permutations=0)
        result = tycos_lmn(cfg).search(x, y)
        assert result.stats.mi_full_searches > 0

    def test_noise_variant_prunes(self):
        x, y = _planted_pair()
        ln = tycos_ln(_config()).search(x, y)
        l_plain = tycos_l(_config()).search(x, y)
        # Noise theory must reduce the evaluation count.
        assert ln.stats.windows_evaluated < l_plain.stats.windows_evaluated

    def test_delay_range(self):
        x, y = _planted_pair()
        result = tycos_lmn(_config()).search(x, y)
        lo, hi = result.delay_range()
        assert lo <= hi
        assert all(lo <= d <= hi for d in result.delays())

    def test_empty_delay_range_is_none(self):
        from repro.core.tycos import TycosResult

        assert TycosResult().delay_range() is None


class TestTopK:
    def test_topk_returns_k_best(self):
        x, y = _planted_pair()
        cfg = _config(significance_permutations=0)
        result = tycos_lmn(cfg).search_topk(x, y, k_top=3)
        assert 0 < len(result.windows) <= 3
        values = [r.nmi for r in result.windows]
        assert values == sorted(values, reverse=True)

    def test_topk_windows_are_strongest(self):
        x, y = _planted_pair()
        cfg = _config(significance_permutations=0)
        topk = tycos_lmn(cfg).search_topk(x, y, k_top=2)
        # The strongest windows must come from the planted region.
        best = topk.windows[0].window
        assert 180 <= best.start <= 330


class TestSignificanceGate:
    def test_gate_reduces_false_positives(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(0, 1, 400)
        y = rng.uniform(0, 1, 400)
        loose = tycos_l(_config(sigma=0.28, significance_permutations=0)).search(x, y)
        gated = tycos_l(_config(sigma=0.28, significance_permutations=25)).search(x, y)
        assert len(gated.windows) <= len(loose.windows)

"""Exact-equality tests for the MI kernel caches (PR 3 tentpole).

Every cache introduced by the hot-path overhaul -- the shared digamma
table, presorted/maintained marginals, and the per-delay workspace LRU --
is a pure amortization: switching any of them off must reproduce the SAME
floats, windows and counters, not approximately but exactly.
"""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.thresholds import BatchScorer, IncrementalScorer
from repro.core.tycos import Tycos
from repro.core.window import PairView, TimeDelayWindow


def _coupled_pair(n=400, lag=7, seed=9):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=n))
    x = base + rng.normal(scale=0.1, size=n)
    y = np.roll(base, lag) + rng.normal(scale=0.1, size=n)
    return x, y


def _ring(rng, n, count, delay, td_max):
    windows = []
    for _ in range(count):
        size = int(rng.integers(8, 40))
        start = int(rng.integers(td_max, n - size - td_max))
        windows.append(TimeDelayWindow(start=start, end=start + size - 1, delay=delay))
    return windows


ALL_ON = dict(use_digamma_table=True, use_sorted_marginals=True, workspace_cache_size=8)
ALL_OFF = dict(use_digamma_table=False, use_sorted_marginals=False, workspace_cache_size=0)


class TestKnobExactEquality:
    @pytest.mark.parametrize("scorer_cls", [BatchScorer, IncrementalScorer])
    def test_score_many_identical_with_all_caches_off(self, scorer_cls):
        x, y = _coupled_pair()
        rng = np.random.default_rng(3)
        windows = _ring(rng, len(x), 12, delay=2, td_max=6) + _ring(
            rng, len(x), 12, delay=-3, td_max=6
        )
        fast = scorer_cls(PairView(x, y), TycosConfig(s_min=8, s_max=60, td_max=6, **ALL_ON))
        slow = scorer_cls(PairView(x, y), TycosConfig(s_min=8, s_max=60, td_max=6, **ALL_OFF))
        assert fast.score_many(windows) == slow.score_many(windows)
        assert fast.evaluations == slow.evaluations
        assert fast.cache_hits == slow.cache_hits

    @pytest.mark.parametrize(
        "knob",
        [
            dict(use_digamma_table=False),
            dict(use_sorted_marginals=False),
            dict(workspace_cache_size=0),
        ],
    )
    @pytest.mark.parametrize("use_incremental", [False, True])
    def test_search_identical_with_each_cache_off(self, knob, use_incremental):
        """Same seed => same TycosResult whether any single cache is on or off."""
        x, y = _coupled_pair(n=320)
        base = TycosConfig(sigma=0.3, s_min=8, s_max=48, td_max=8, jitter=1e-6, seed=2)
        fast = Tycos(base, use_incremental=use_incremental).search(x, y)
        slow = Tycos(base.scaled(**knob), use_incremental=use_incremental).search(x, y)
        assert [r.window for r in fast.windows] == [r.window for r in slow.windows]
        assert [r.mi for r in fast.windows] == [r.mi for r in slow.windows]
        assert [r.nmi for r in fast.windows] == [r.nmi for r in slow.windows]
        assert fast.stats.windows_evaluated == slow.stats.windows_evaluated
        assert fast.stats.cache_hits == slow.stats.cache_hits
        assert fast.stats.accepted_moves == slow.stats.accepted_moves
        assert fast.stats.lahc_iterations == slow.stats.lahc_iterations


class TestWorkspaceLRU:
    def test_repeat_clusters_hit_the_workspace_cache(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6)
        scorer = BatchScorer(PairView(x, y), config)
        # One LAHC-ring-shaped cluster: overlapping same-delay windows.
        ring = [
            TimeDelayWindow(start=100 + i, end=140 + 2 * i, delay=2) for i in range(6)
        ]
        scorer.score_many(ring)
        assert scorer.workspace_builds == 1
        # A shifted ring at the same delay, inside the cached span, is free.
        contained = [
            TimeDelayWindow(start=w.start + 1, end=w.end - 1, delay=w.delay) for w in ring
        ]
        scorer.score_many(contained)
        assert scorer.workspace_hits == 1
        assert scorer.workspace_builds == 1

    def test_lru_capacity_bounds_entries(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6, workspace_cache_size=2)
        scorer = BatchScorer(PairView(x, y), config)
        rng = np.random.default_rng(3)
        for delay in (0, 1, 2, 3):
            scorer.score_many(_ring(rng, len(x), 4, delay=delay, td_max=6))
        assert len(scorer._workspaces) <= 2

    def test_zero_capacity_disables_the_cache(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6, workspace_cache_size=0)
        scorer = BatchScorer(PairView(x, y), config)
        rng = np.random.default_rng(3)
        ring = _ring(rng, len(x), 8, delay=2, td_max=6)
        scorer.score_many(ring)
        scorer.score_many(
            [TimeDelayWindow(start=w.start, end=w.end, delay=w.delay) for w in ring]
        )
        assert scorer.workspace_hits == 0
        assert len(scorer._workspaces) == 0

    def test_clear_cache_drops_workspaces(self):
        x, y = _coupled_pair()
        scorer = BatchScorer(PairView(x, y), TycosConfig(s_min=8, s_max=60, td_max=6))
        rng = np.random.default_rng(3)
        scorer.score_many(_ring(rng, len(x), 6, delay=1, td_max=6))
        assert len(scorer._workspaces) >= 1
        scorer.clear_cache()
        assert len(scorer._workspaces) == 0

    def test_search_stats_surface_workspace_counters(self):
        x, y = _coupled_pair(n=320)
        config = TycosConfig(sigma=0.3, s_min=8, s_max=48, td_max=8, jitter=1e-6, seed=2)
        result = Tycos(config, use_incremental=False).search(x, y)
        assert result.stats.workspace_builds > 0
        # LAHC revisits delays across iterations, so the LRU must pay off.
        assert result.stats.workspace_hits > 0
        scalar = Tycos(config, use_incremental=False, batched_scoring=False).search(x, y)
        assert scalar.stats.workspace_builds == 0
        assert scalar.stats.workspace_hits == 0


class TestConfigKnobs:
    def test_workspace_cache_size_rejects_negative(self):
        with pytest.raises(ValueError, match="workspace_cache_size"):
            TycosConfig(workspace_cache_size=-1)

    def test_defaults_enable_every_cache(self):
        config = TycosConfig()
        assert config.use_digamma_table is True
        assert config.use_sorted_marginals is True
        assert config.workspace_cache_size == 8

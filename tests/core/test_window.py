"""Tests for the time delay window model (Definitions 4.2 - 4.5, 6.2, 6.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import PairView, TimeDelayWindow


class TestWindowBasics:
    def test_size(self):
        assert TimeDelayWindow(3, 7).size == 5
        assert TimeDelayWindow(0, 0).size == 1

    def test_y_interval_follows_delay(self):
        w = TimeDelayWindow(10, 20, delay=5)
        assert (w.y_start, w.y_end) == (15, 25)
        w = TimeDelayWindow(10, 20, delay=-4)
        assert (w.y_start, w.y_end) == (6, 16)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start"):
            TimeDelayWindow(-1, 5)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError, match="end"):
            TimeDelayWindow(5, 4)

    def test_ordering_and_hash(self):
        a = TimeDelayWindow(1, 5, 0)
        b = TimeDelayWindow(1, 5, 0)
        c = TimeDelayWindow(2, 5, 0)
        assert a == b
        assert hash(a) == hash(b)
        assert a < c

    def test_key(self):
        assert TimeDelayWindow(1, 2, 3).key() == (1, 2, 3)


class TestFeasibility:
    def test_feasible_window(self):
        w = TimeDelayWindow(10, 29, delay=5)
        assert w.is_feasible(n=100, s_min=10, s_max=30, td_max=10)

    def test_size_bounds(self):
        w = TimeDelayWindow(0, 9)
        assert not w.is_feasible(n=100, s_min=11, s_max=30, td_max=5)
        assert not w.is_feasible(n=100, s_min=2, s_max=9, td_max=5)

    def test_delay_bound(self):
        w = TimeDelayWindow(20, 30, delay=8)
        assert not w.is_feasible(n=100, s_min=5, s_max=20, td_max=7)

    def test_y_interval_must_fit(self):
        # End 95 with delay 10 pushes Y to 105 > 99.
        w = TimeDelayWindow(80, 95, delay=10)
        assert not w.is_feasible(n=100, s_min=5, s_max=30, td_max=20)
        # Start 3 with delay -5 pushes Y below 0.
        w = TimeDelayWindow(3, 20, delay=-5)
        assert not w.is_feasible(n=100, s_min=5, s_max=30, td_max=20)


class TestContainmentOverlap:
    def test_contains(self):
        outer = TimeDelayWindow(5, 20)
        inner = TimeDelayWindow(7, 15, delay=3)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_overlap_fraction(self):
        a = TimeDelayWindow(0, 9)
        b = TimeDelayWindow(5, 14)
        assert a.overlap_fraction(b) == pytest.approx(5 / 15)
        assert a.overlap_fraction(a) == 1.0
        assert a.overlap_fraction(TimeDelayWindow(20, 30)) == 0.0

    @given(
        st.integers(0, 50), st.integers(0, 30),
        st.integers(0, 50), st.integers(0, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_overlap_symmetric(self, s1, l1, s2, l2):
        a = TimeDelayWindow(s1, s1 + l1)
        b = TimeDelayWindow(s2, s2 + l2)
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlap_fraction(b) == pytest.approx(b.overlap_fraction(a))


class TestConcatenation:
    def test_consecutive_windows(self):
        a = TimeDelayWindow(0, 9, delay=3)
        b = TimeDelayWindow(10, 19, delay=3)
        assert a.is_consecutive_with(b)
        assert not b.is_consecutive_with(a)

    def test_different_delay_not_consecutive(self):
        a = TimeDelayWindow(0, 9, delay=3)
        b = TimeDelayWindow(10, 19, delay=4)
        assert not a.is_consecutive_with(b)

    def test_concat(self):
        a = TimeDelayWindow(0, 9, delay=2)
        b = TimeDelayWindow(10, 19, delay=2)
        combined = a.concat(b)
        assert combined == TimeDelayWindow(0, 19, delay=2)

    def test_concat_rejects_non_consecutive(self):
        a = TimeDelayWindow(0, 9)
        b = TimeDelayWindow(11, 19)
        with pytest.raises(ValueError, match="not consecutive"):
            a.concat(b)

    def test_shifted(self):
        w = TimeDelayWindow(5, 10, delay=1)
        assert w.shifted(d_end=2) == TimeDelayWindow(5, 12, 1)
        assert w.shifted(d_start=-2, d_delay=3) == TimeDelayWindow(3, 10, 4)


class TestPairView:
    def test_extract_zero_delay(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        pair = PairView(x, y)
        xw, yw = pair.extract(TimeDelayWindow(10, 19))
        np.testing.assert_array_equal(xw, x[10:20])
        np.testing.assert_array_equal(yw, y[10:20])

    def test_extract_with_delay(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        pair = PairView(x, y)
        xw, yw = pair.extract(TimeDelayWindow(10, 19, delay=7))
        np.testing.assert_array_equal(xw, x[10:20])
        np.testing.assert_array_equal(yw, y[17:27])

    def test_extract_out_of_bounds(self, rng):
        pair = PairView(rng.normal(size=20), rng.normal(size=20))
        with pytest.raises(IndexError, match="Y bounds"):
            pair.extract(TimeDelayWindow(10, 15, delay=5))
        with pytest.raises(IndexError, match="X bounds"):
            pair.extract(TimeDelayWindow(10, 25))

    def test_jitter_breaks_ties_deterministically(self):
        x = np.zeros(30)
        y = np.zeros(30)
        a = PairView(x, y, jitter=1e-6, seed=7)
        b = PairView(x, y, jitter=1e-6, seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        assert len(np.unique(a.x)) == 30  # ties broken

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            PairView(np.arange(3.0), np.arange(4.0))

    def test_rejects_nan(self):
        x = np.array([0.0, np.nan])
        with pytest.raises(ValueError, match="finite"):
            PairView(x, np.zeros(2))

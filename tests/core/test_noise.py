"""Tests for the noise theory (Section 6): predicate, initial pruning,
subsequent direction blocking."""

import numpy as np

from repro.core.config import TycosConfig
from repro.core.neighborhood import Neighbor
from repro.core.noise import NoiseDetector, find_initial_window, is_noise
from repro.core.thresholds import BatchScorer
from repro.core.window import PairView, TimeDelayWindow


def _scorer_for(x, y, **cfg_kwargs):
    # sigma/s_min chosen so the noise threshold epsilon = sigma/4 clears
    # the small-sample null distribution of normalized MI: at m=32 the null
    # stays below ~0.15 while planted near-deterministic relations score
    # close to 1.
    defaults = dict(sigma=0.8, s_min=32, s_max=120, td_max=0, init_delay_step=1)
    defaults.update(cfg_kwargs)
    config = TycosConfig(**defaults)
    pair = PairView(np.asarray(x, dtype=float), np.asarray(y, dtype=float))
    return BatchScorer(pair, config), config, pair


class TestNoisePredicate:
    def test_definition_64(self):
        # noise iff following < eps AND concatenation decreases the score.
        assert is_noise(0.01, 0.3, 0.5, epsilon=0.1)
        assert not is_noise(0.2, 0.3, 0.5, epsilon=0.1)   # following too strong
        assert not is_noise(0.01, 0.6, 0.5, epsilon=0.1)  # concat improved
        assert not is_noise(0.01, 0.5, 0.5, epsilon=0.1)  # concat equal

    def test_zero_epsilon_never_flags(self):
        assert not is_noise(0.0, 0.1, 0.5, epsilon=0.0)


class TestInitialNoisePruning:
    def _planted(self, rng, start=200, m=80, delay=0):
        n = 400
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, m)
        x[start : start + m] = seg
        y[start + delay : start + delay + m] = seg + 0.01 * rng.normal(size=m)
        return x, y

    def test_skips_leading_noise(self, rng):
        x, y = self._planted(rng)
        scorer, config, pair = _scorer_for(x, y)
        w0 = find_initial_window(scorer, config, pair.n, scan_from=0)
        assert w0 is not None
        # The initial window must land inside the planted region, far past
        # the 200 samples of leading noise.
        assert w0.start >= 180
        assert scorer.value(w0) >= config.epsilon

    def test_finds_delayed_start(self, rng):
        x, y = self._planted(rng, delay=3)
        scorer, config, pair = _scorer_for(x, y, td_max=5)
        w0 = find_initial_window(scorer, config, pair.n, scan_from=0)
        assert w0 is not None
        assert w0.delay == 3

    def test_all_noise_returns_none(self, rng):
        x = rng.uniform(0, 1, 300)
        y = rng.uniform(0, 1, 300)
        scorer, config, pair = _scorer_for(x, y)
        assert find_initial_window(scorer, config, pair.n, scan_from=0) is None

    def test_scan_from_respected(self, rng):
        x, y = self._planted(rng, start=50, m=60)
        scorer, config, pair = _scorer_for(x, y)
        w0 = find_initial_window(scorer, config, pair.n, scan_from=150)
        # The planted region lies before scan_from; nothing promising after.
        assert w0 is None or w0.start >= 150


class TestSubsequentNoiseDetection:
    def _detector(self, rng):
        n = 400
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        # Strong relation inside [100, 260); noise elsewhere.
        seg = rng.uniform(0, 1, 160)
        x[100:260] = seg
        y[100:260] = seg + 0.01 * rng.normal(size=160)
        scorer, config, pair = _scorer_for(x, y)
        return NoiseDetector(scorer=scorer, config=config, n=pair.n), scorer

    def test_blocks_forward_growth_into_noise(self, rng):
        detector, scorer = self._detector(rng)
        # Window ending right at the edge of the relation: growing forward
        # concatenates pure noise.
        window = TimeDelayWindow(218, 259, delay=0)
        detector.inspect(window, scorer.value(window))
        assert (0, 1, 0) in detector.blocked
        assert detector.prunes >= 1

    def test_blocks_backward_growth_into_noise(self, rng):
        detector, scorer = self._detector(rng)
        window = TimeDelayWindow(100, 141, delay=0)
        detector.inspect(window, scorer.value(window))
        assert (-1, 0, 0) in detector.blocked

    def test_no_block_inside_relation(self, rng):
        detector, scorer = self._detector(rng)
        window = TimeDelayWindow(140, 200, delay=0)
        detector.inspect(window, scorer.value(window))
        # Both growth directions stay inside the relation: no pruning.
        assert (0, 1, 0) not in detector.blocked
        assert (-1, 0, 0) not in detector.blocked

    def test_reset_clears_blocks(self, rng):
        detector, scorer = self._detector(rng)
        window = TimeDelayWindow(218, 259, delay=0)
        detector.inspect(window, scorer.value(window))
        assert detector.blocked
        detector.reset()
        assert not detector.blocked

    def test_filter_neighbors_respects_blocks(self, rng):
        detector, _ = self._detector(rng)
        detector.blocked.add((0, 1, 0))
        neighbors = [
            Neighbor(TimeDelayWindow(0, 10), (0, 1, 0)),
            Neighbor(TimeDelayWindow(0, 10), (0, 1, 1)),
            Neighbor(TimeDelayWindow(0, 10), (0, -1, 0)),
        ]
        kept = detector.filter_neighbors(neighbors)
        assert [nb.direction for nb in kept] == [(0, -1, 0)]

    def test_zero_value_window_not_inspected(self, rng):
        detector, _ = self._detector(rng)
        detector.inspect(TimeDelayWindow(10, 40, delay=0), 0.0)
        assert not detector.blocked
        assert detector.prunes == 0

"""Tests for delta-neighborhood generation (Definitions 5.1 / 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighborhood import neighborhood
from repro.core.window import TimeDelayWindow


def _mid_window():
    return TimeDelayWindow(start=50, end=80, delay=0)


class TestRingStructure:
    def test_n1_has_26_neighbors_unconstrained(self):
        # Fig. 5: the 1-neighborhood is the 26-window shell of a 3x3x3 cube.
        nbs = neighborhood(_mid_window(), radius=1, delta=1, n=1000, s_min=5, s_max=100, td_max=50)
        assert len(nbs) == 26

    def test_n2_shell_size_unconstrained(self):
        # (2r+1)^3 - (2r-1)^3 = 98 for r=2.
        nbs = neighborhood(_mid_window(), radius=2, delta=1, n=1000, s_min=5, s_max=100, td_max=50)
        assert len(nbs) == 98

    def test_all_neighbors_feasible(self):
        n, s_min, s_max, td = 200, 10, 50, 5
        nbs = neighborhood(
            _mid_window(), radius=3, delta=2, n=n, s_min=s_min, s_max=s_max, td_max=td
        )
        for nb in nbs:
            assert nb.window.is_feasible(n, s_min, s_max, td)

    def test_neighbors_differ_by_exactly_radius_steps(self):
        w = _mid_window()
        delta = 3
        for nb in neighborhood(w, radius=2, delta=delta, n=1000, s_min=5, s_max=200, td_max=50):
            offs = (
                (nb.window.start - w.start) // delta,
                (nb.window.end - w.end) // delta,
                (nb.window.delay - w.delay) // delta,
            )
            assert max(abs(o) for o in offs) == 2

    def test_direction_is_sign_vector(self):
        w = _mid_window()
        for nb in neighborhood(w, radius=1, delta=2, n=1000, s_min=5, s_max=100, td_max=50):
            expected = (
                (nb.window.start > w.start) - (nb.window.start < w.start),
                (nb.window.end > w.end) - (nb.window.end < w.end),
                (nb.window.delay > w.delay) - (nb.window.delay < w.delay),
            )
            assert nb.direction == expected

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError, match="radius"):
            neighborhood(_mid_window(), radius=0, delta=1, n=100, s_min=5, s_max=50, td_max=5)


class TestBlocking:
    def test_blocked_axis_direction_removes_all_matching(self):
        w = _mid_window()
        blocked = frozenset({(0, 1, 0)})  # no end-growing moves
        nbs = neighborhood(
            w, radius=1, delta=1, n=1000, s_min=5, s_max=100, td_max=50, blocked=blocked
        )
        assert all(nb.window.end <= w.end for nb in nbs)
        # 9 of the 26 moves grow the end.
        assert len(nbs) == 26 - 9

    def test_blocking_two_directions(self):
        w = _mid_window()
        blocked = frozenset({(0, 1, 0), (-1, 0, 0)})
        nbs = neighborhood(
            w, radius=1, delta=1, n=1000, s_min=5, s_max=100, td_max=50, blocked=blocked
        )
        for nb in nbs:
            assert nb.window.end <= w.end
            assert nb.window.start >= w.start

    def test_empty_blocked_set_changes_nothing(self):
        w = _mid_window()
        a = neighborhood(w, radius=1, delta=1, n=1000, s_min=5, s_max=100, td_max=50)
        b = neighborhood(
            w, radius=1, delta=1, n=1000, s_min=5, s_max=100, td_max=50, blocked=frozenset()
        )
        assert len(a) == len(b)


class TestBoundaryClipping:
    def test_near_series_start(self):
        w = TimeDelayWindow(0, 10, delay=0)
        nbs = neighborhood(w, radius=1, delta=1, n=100, s_min=5, s_max=20, td_max=3)
        assert all(nb.window.start >= 0 for nb in nbs)

    def test_near_series_end(self):
        w = TimeDelayWindow(90, 99, delay=0)
        nbs = neighborhood(w, radius=1, delta=1, n=100, s_min=5, s_max=20, td_max=3)
        assert all(nb.window.end < 100 for nb in nbs)
        assert all(nb.window.y_end < 100 for nb in nbs)

    @given(st.integers(0, 80), st.integers(5, 30), st.integers(-5, 5), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_property_feasibility_always_holds(self, start, size, delay, radius):
        n, s_min, s_max, td = 120, 5, 40, 6
        w = TimeDelayWindow(start, min(start + size, n - 1), delay)
        for nb in neighborhood(w, radius=radius, delta=2, n=n, s_min=s_min, s_max=s_max, td_max=td):
            assert nb.window.is_feasible(n, s_min, s_max, td)

"""Tests for the generic Late Acceptance Hill Climbing engine."""

import numpy as np
import pytest

from repro.core.lahc import LateAcceptanceHillClimbing


def _climb_1d(objective, start, lo=-50, hi=50, **kwargs):
    """Helper: maximize a 1-D integer objective with unit-step neighbors."""
    lahc = LateAcceptanceHillClimbing(
        history_length=kwargs.pop("history_length", 5),
        max_idle=kwargs.pop("max_idle", 3),
        rng=np.random.default_rng(kwargs.pop("seed", 0)),
    )

    def candidates(state, idle):
        radius = 1 + idle
        out = []
        for step in range(-radius, radius + 1):
            if step == 0:
                continue
            cand = state + step
            if lo <= cand <= hi:
                out.append((cand, objective(cand)))
        return out

    return lahc.search(start, objective(start), candidates)


class TestHillClimbing:
    def test_finds_peak_of_unimodal(self):
        result = _climb_1d(lambda v: -(v - 17) ** 2, start=0)
        assert result.best == 17
        assert result.best_value == 0

    def test_starts_at_peak(self):
        result = _climb_1d(lambda v: -(v**2), start=0)
        assert result.best == 0
        assert result.accepted_moves == 0

    def test_crosses_small_plateau(self):
        # Flat region between 5 and 10, then rising; growing neighborhoods
        # (radius = 1 + idle) plus history acceptance must cross it.
        def objective(v):
            if v < 5:
                return float(v)
            if v <= 10:
                return 5.0
            return 5.0 + (v - 10) if v <= 20 else 15.0 - (v - 20)

        result = _climb_1d(objective, start=0, max_idle=6)
        assert result.best == 20

    def test_trajectory_records_accepted_values(self):
        result = _climb_1d(lambda v: float(v), start=0, lo=0, hi=10)
        assert result.trajectory[0] == 0.0
        assert result.trajectory[-1] == result.best_value
        # LAHC may accept history-beating (not strictly improving) moves,
        # but the best value is the max of the trajectory.
        assert max(result.trajectory) == result.best_value

    def test_iterations_counted(self):
        result = _climb_1d(lambda v: -(v - 3) ** 2, start=0)
        assert result.iterations >= result.accepted_moves

    def test_empty_candidates_terminate(self):
        lahc = LateAcceptanceHillClimbing(3, 2, np.random.default_rng(0))
        result = lahc.search("s", 1.0, lambda state, idle: [])
        assert result.best == "s"
        assert result.iterations == 2  # max_idle rounds of nothing


class TestLahcPolicies:
    def test_history_allows_sideways_moves(self):
        # A candidate worse than current but better than a *stale* history
        # entry is accepted (Policy 1, the "late acceptance" part).  With a
        # long history list, most slots still hold the initial low value
        # after one acceptance, so the downhill move is accepted as soon as
        # a stale slot is drawn.
        accepted_down = False
        for seed in range(10):
            lahc = LateAcceptanceHillClimbing(8, 3, np.random.default_rng(seed))
            visited = []

            def candidates(state, idle):
                visited.append(state)
                if state == "start":
                    return [("up", 10.0)]
                if state == "up":
                    # Worse than current (10), better than the initial 1.0
                    # still sitting in most history slots.
                    return [("down", 5.0)]
                return []

            lahc.search("start", 1.0, candidates)
            if "down" in visited:
                accepted_down = True
                break
        assert accepted_down

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="history_length"):
            LateAcceptanceHillClimbing(0, 3)
        with pytest.raises(ValueError, match="max_idle"):
            LateAcceptanceHillClimbing(3, 0)

    def test_deterministic_given_seed(self):
        def run():
            return _climb_1d(lambda v: float(-abs(v - 9)), start=0, seed=42)

        a, b = run(), run()
        assert a.best == b.best
        assert a.trajectory == b.trajectory

    def test_best_never_worse_than_initial(self):
        for seed in range(5):
            result = _climb_1d(lambda v: float(np.sin(v / 3.0)), start=-20, seed=seed)
            assert result.best_value >= np.sin(-20 / 3.0)

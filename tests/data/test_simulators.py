"""Tests for the energy and smart-city simulators."""

import numpy as np
import pytest

from repro.data.energy import DEVICES, EXPECTED_COUPLINGS, simulate_energy
from repro.data.smartcity import (
    EXPECTED_CITY_COUPLINGS,
    INCIDENT_VARIABLES,
    WEATHER_VARIABLES,
    simulate_smartcity,
)


def _lagged_corr(x, y, lag):
    if lag > 0:
        return np.corrcoef(x[:-lag], y[lag:])[0, 1]
    if lag < 0:
        return np.corrcoef(x[-lag:], y[:lag])[0, 1]
    return np.corrcoef(x, y)[0, 1]


class TestEnergySimulator:
    def test_all_devices_present(self):
        data = simulate_energy(days=1, seed=0)
        assert set(data.device_names()) == set(DEVICES)

    def test_length_matches_days_and_resolution(self):
        data = simulate_energy(days=2, seed=0, minutes_per_sample=5)
        assert data.n == 2 * 24 * 60 // 5

    def test_loads_non_negative(self):
        data = simulate_energy(days=2, seed=1)
        for name, series in data.series.items():
            assert np.all(series >= 0), name

    def test_deterministic_in_seed(self):
        a = simulate_energy(days=1, seed=5)
        b = simulate_energy(days=1, seed=5)
        np.testing.assert_array_equal(a.series["kitchen"], b.series["kitchen"])

    def test_different_seeds_differ(self):
        a = simulate_energy(days=1, seed=1)
        b = simulate_energy(days=1, seed=2)
        assert not np.array_equal(a.series["kitchen"], b.series["kitchen"])

    def test_washer_dryer_coupling_at_planted_lag(self):
        data = simulate_energy(days=21, seed=0, minutes_per_sample=4, event_density=2.0)
        x, y = data.pair("clothes_washer", "dryer")
        lags = range(0, 16)
        corrs = [_lagged_corr(x, y, lag) for lag in lags]
        best = int(np.argmax(corrs))
        # Planted lag 10-30 minutes = 2-7 samples at 4-minute resolution.
        assert 2 <= best <= 8
        assert max(corrs) > 0.3

    def test_coupling_catalog_covers_table3(self):
        labels = [c.label for c in EXPECTED_COUPLINGS]
        assert labels == ["C1", "C2", "C3", "C4", "C5", "C6"]
        for c in EXPECTED_COUPLINGS:
            assert c.source in DEVICES and c.target in DEVICES
            assert c.lag_minutes[0] <= c.lag_minutes[1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="days"):
            simulate_energy(days=0)
        with pytest.raises(ValueError, match="minutes_per_sample"):
            simulate_energy(days=1, minutes_per_sample=0)

    def test_pair_unknown_device(self):
        data = simulate_energy(days=1, seed=0)
        with pytest.raises(KeyError):
            data.pair("kitchen", "sauna")


class TestSmartCitySimulator:
    def test_all_variables_present(self):
        data = simulate_smartcity(days=2, seed=0)
        names = set(data.variable_names())
        assert set(WEATHER_VARIABLES) <= names
        assert set(INCIDENT_VARIABLES) <= names

    def test_counts_are_integers(self):
        data = simulate_smartcity(days=2, seed=0)
        collisions = data.series["collisions"]
        np.testing.assert_array_equal(collisions, np.round(collisions))
        assert np.all(collisions >= 0)

    def test_weather_non_negative(self):
        data = simulate_smartcity(days=3, seed=2)
        for name in WEATHER_VARIABLES:
            assert np.all(data.series[name] >= 0), name

    def test_rain_collision_coupling_is_lagged(self):
        data = simulate_smartcity(days=30, seed=0)
        p, c = data.pair("precipitation", "collisions")
        # Planted onset lag 30-120 min = 6-24 samples at 5-min resolution:
        # correlation at a mid-range lag beats the instantaneous one.
        mid = _lagged_corr(p, c, 15)
        assert mid > 0.15

    def test_snow_collision_coupling_exists(self):
        data = simulate_smartcity(days=30, seed=1)
        s, c = data.pair("snow", "collisions")
        lags = range(0, 30)
        corrs = [_lagged_corr(s, c, lag) for lag in lags]
        assert max(corrs) > 0.1
        assert 3 <= int(np.argmax(corrs)) <= 25

    def test_diurnal_pattern_in_collisions(self):
        data = simulate_smartcity(days=14, seed=3)
        c = data.series["collisions"].reshape(14, -1).mean(axis=0)
        per_hour = c.reshape(24, -1).mean(axis=1)
        # Rush hours busier than 3-4am.
        assert per_hour[8] > 1.5 * per_hour[3]
        assert per_hour[17] > 1.5 * per_hour[3]

    def test_deterministic_in_seed(self):
        a = simulate_smartcity(days=2, seed=9)
        b = simulate_smartcity(days=2, seed=9)
        np.testing.assert_array_equal(a.series["collisions"], b.series["collisions"])

    def test_coupling_catalog_covers_table3(self):
        labels = [c.label for c in EXPECTED_CITY_COUPLINGS]
        assert labels == ["C7", "C8", "C9", "C10"]

    def test_rejects_bad_days(self):
        with pytest.raises(ValueError, match="days"):
            simulate_smartcity(days=0)

"""Tests for the time series composer."""

import numpy as np
import pytest

from repro.data.composer import compose, standard_pair
from repro.data.relations import relation_names
from repro.mi.normalized import normalized_mi


class TestCompose:
    def test_ground_truth_recorded(self, rng):
        pair = compose([("linear", 50, 10), ("sine", 60, -5)], rng, gap=40)
        assert [p.name for p in pair.planted] == ["linear", "sine"]
        first, second = pair.planted
        assert first.window.size == 50
        assert first.delay == 10
        assert second.start == first.end + 41
        assert second.delay == -5

    def test_segments_carry_mi_at_true_delay_only(self, rng):
        pair = compose([("quadratic", 120, 30)], rng, gap=60)
        p = pair.planted[0]
        w = p.window
        xw = pair.x[w.start : w.end + 1]
        y_true = pair.y[w.y_start : w.y_end + 1]
        y_wrong = pair.y[w.start : w.end + 1]
        assert normalized_mi(xw, y_true) > 0.4
        assert normalized_mi(xw, y_wrong) < 0.15

    def test_sorted_order_makes_x_monotonic(self, rng):
        pair = compose([("linear", 50, 0)], rng, gap=30, segment_order="sorted")
        p = pair.planted[0]
        xs = pair.x[p.start : p.end + 1]
        assert np.all(np.diff(xs) >= 0)

    def test_shuffled_order_not_monotonic(self, rng):
        pair = compose([("linear", 80, 0)], rng, gap=30, segment_order="shuffled")
        p = pair.planted[0]
        xs = pair.x[p.start : p.end + 1]
        assert not np.all(np.diff(xs) >= 0)

    def test_gap_must_exceed_delay(self, rng):
        with pytest.raises(ValueError, match="gap"):
            compose([("linear", 50, 100)], rng, gap=50)

    def test_unknown_normalize_mode(self, rng):
        with pytest.raises(ValueError, match="normalize"):
            compose([("linear", 50, 0)], rng, normalize="minmax")

    def test_unknown_segment_order(self, rng):
        with pytest.raises(ValueError, match="segment_order"):
            compose([("linear", 50, 0)], rng, segment_order="random")

    def test_zscore_mode(self, rng):
        pair = compose([("linear", 100, 0)], rng, gap=30, normalize="zscore")
        p = pair.planted[0]
        xs = pair.x[p.start : p.end + 1]
        assert xs.mean() == pytest.approx(0.0, abs=1e-9)
        assert xs.std() == pytest.approx(1.0, abs=1e-9)


class TestStandardPair:
    def test_all_nine_relations_planted(self, rng):
        pair = standard_pair(rng, segment_length=40, delay=0)
        assert [p.name for p in pair.planted] == relation_names()

    def test_truth_windows_exclude_independent(self, rng):
        pair = standard_pair(rng, segment_length=40, delay=0)
        truths = pair.truth_windows()
        assert len(truths) == 8  # independent excluded

    def test_delay_applied_to_dependents_only(self, rng):
        pair = standard_pair(rng, segment_length=40, delay=25)
        for p in pair.planted:
            assert p.delay == (25 if p.dependent else 0)

    def test_truth_for(self, rng):
        pair = standard_pair(rng, segment_length=40)
        assert len(pair.truth_for("sine")) == 1
        assert pair.truth_for("sine")[0].name == "sine"

    def test_subset_of_names(self, rng):
        pair = standard_pair(rng, segment_length=40, names=["linear", "circle"])
        assert [p.name for p in pair.planted] == ["linear", "circle"]

"""Tests for the Table-1 relation generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relations import RELATIONS, generate_relation, relation_names
from repro.mi.ksg import ksg_mi


class TestCatalog:
    def test_nine_relations_in_table_order(self):
        assert relation_names() == [
            "independent",
            "linear",
            "exponential",
            "quadratic",
            "circle",
            "sine",
            "cross",
            "quartic",
            "square_root",
        ]

    def test_flags_consistent(self):
        specs = RELATIONS
        assert not specs["independent"].dependent
        assert specs["linear"].linear and specs["linear"].monotonic
        assert not specs["circle"].functional
        assert not specs["cross"].functional
        assert specs["exponential"].monotonic and not specs["exponential"].linear
        assert not specs["sine"].monotonic

    def test_unknown_relation_rejected(self, rng):
        with pytest.raises(KeyError, match="unknown relation"):
            generate_relation("cubic", 10, rng)

    def test_bad_size_rejected(self, rng):
        with pytest.raises(ValueError, match="m must be"):
            generate_relation("linear", 0, rng)


class TestGeneratedShapes:
    def test_linear_formula(self, rng):
        x, y = generate_relation("linear", 500, rng)
        residual = y - 2 * x
        # u ~ U(0,1): residuals inside [0, 1].
        assert np.all((residual >= 0) & (residual <= 1))
        assert np.all((x >= 0) & (x <= 10))

    def test_quadratic_domain(self, rng):
        x, y = generate_relation("quadratic", 500, rng)
        assert np.all((x >= -4) & (x <= 4))
        assert np.all(y >= x * x)

    def test_circle_two_branches(self, rng):
        x, y = generate_relation("circle", 1000, rng)
        assert (y > 0).any() and (y < 0).any()
        # Points stay near the radius-3 circle (u noise inflates slightly).
        radius = np.sqrt(x * x + y * y)
        assert np.all(radius <= 3.4)

    def test_cross_two_branches(self, rng):
        x, y = generate_relation("cross", 1000, rng)
        on_pos = np.abs(y - x) <= 1.0
        on_neg = np.abs(y + x) <= 1.0
        assert np.all(on_pos | on_neg)
        assert on_pos.any() and on_neg.any()

    def test_square_root_noiseless(self, rng):
        x, y = generate_relation("square_root", 200, rng)
        np.testing.assert_allclose(y, np.sqrt(x))

    def test_lengths(self, rng):
        for name in relation_names():
            x, y = generate_relation(name, 77, rng)
            assert x.size == y.size == 77


class TestInformationContent:
    @pytest.mark.parametrize("name", [n for n in relation_names() if n != "independent"])
    def test_dependent_relations_carry_mi(self, name, rng):
        x, y = generate_relation(name, 400, rng)
        # Rank-transform to tame the exponential's 40-decade span.
        rx = np.argsort(np.argsort(x)).astype(float)
        ry = np.argsort(np.argsort(y)).astype(float)
        assert ksg_mi(rx, ry) > 0.2, name

    def test_independent_carries_none(self, rng):
        x, y = generate_relation("independent", 800, rng)
        assert abs(ksg_mi(x, y)) < 0.08

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_property_deterministic_per_generator_state(self, seed):
        a = generate_relation("sine", 50, np.random.default_rng(seed))
        b = generate_relation("sine", 50, np.random.default_rng(seed))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

"""Shared fixtures for the TYCOS reproduction test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def correlated_gaussian(rng):
    """A (x, y) pair with rho=0.8 and known MI = -0.5*ln(1-rho^2)."""
    n = 600
    x = rng.normal(size=n)
    y = 0.8 * x + 0.6 * rng.normal(size=n)
    return x, y


@pytest.fixture
def independent_pair(rng):
    """Two independent Gaussian series."""
    n = 600
    return rng.normal(size=n), rng.normal(size=n)

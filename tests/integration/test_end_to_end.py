"""Cross-module integration tests: the full pipeline on realistic data."""

import numpy as np

from repro import (
    Tycos,
    TycosConfig,
    brute_force_search,
    tycos_l,
    tycos_lmn,
)
from repro.baselines.amic import amic_search
from repro.core.results import merge_overlapping
from repro.data.composer import standard_pair
from repro.data.energy import simulate_energy
from repro.experiments.similarity import detects, window_set_similarity


class TestComposedPipeline:
    def test_full_search_on_composed_relations(self):
        rng = np.random.default_rng(7)
        pair = standard_pair(
            rng, segment_length=100, delay=20, names=["independent", "linear", "quadratic"]
        )
        cfg = TycosConfig(
            sigma=0.45,
            s_min=16,
            s_max=200,
            td_max=26,
            init_delay_step=1,
            significance_permutations=15,
            seed=0,
        )
        result = tycos_lmn(cfg).search(pair.x, pair.y)
        found = [r.window for r in result.windows]
        for planted in pair.planted:
            hit = detects(found, planted.window)
            assert hit == planted.dependent, planted.name

    def test_heuristic_tracks_brute_force(self):
        rng = np.random.default_rng(2)
        pair = standard_pair(rng, segment_length=60, delay=3, names=["linear", "sine"], gap=40)
        cfg = TycosConfig(
            sigma=0.4, s_min=16, s_max=48, td_max=5, init_delay_step=1, seed=0
        )
        exact = brute_force_search(pair.x, pair.y, cfg, aggregate=True)
        heuristic = tycos_l(cfg).search(pair.x, pair.y)
        similarity = window_set_similarity(
            merge_overlapping([r.window for r in heuristic.windows]),
            [r.window for r in exact.windows],
        )
        assert similarity >= 0.5

    def test_topk_agrees_with_fixed_sigma_peaks(self):
        rng = np.random.default_rng(4)
        pair = standard_pair(rng, segment_length=80, delay=0, names=["linear", "sine"])
        cfg = TycosConfig(
            sigma=0.4, s_min=16, s_max=120, td_max=4, init_delay_step=1, seed=0
        )
        fixed = tycos_lmn(cfg).search(pair.x, pair.y)
        topk = tycos_lmn(cfg).search_topk(pair.x, pair.y, k_top=3)
        assert topk.windows
        # Each top-K window lies in a region the fixed search also flagged.
        fixed_windows = [r.window for r in fixed.windows]
        for r in topk.windows:
            assert any(r.window.overlap_fraction(w) > 0 for w in fixed_windows)


class TestSimulatedRealData:
    def test_energy_pipeline_tycos_vs_amic(self):
        data = simulate_energy(days=3, seed=0, minutes_per_sample=4, event_density=2.0)
        x, y = data.pair("clothes_washer", "dryer")
        cfg = TycosConfig(
            sigma=0.3,
            s_min=20,
            s_max=180,
            td_max=10,
            jitter=1e-3,
            significance_permutations=10,
            seed=0,
        )
        tycos_result = tycos_lmn(cfg).search(x, y)
        amic_result = amic_search(x, y, cfg.scaled(td_max=0))
        assert len(tycos_result.windows) > 0
        # The washer-dryer lag is 10-30 minutes: TYCOS's delays must skew
        # positive, and AMIC (delay-blind) must find less than TYCOS.
        delays = tycos_result.delays()
        assert max(delays) > 0
        assert len(amic_result.windows) <= len(tycos_result.windows)

    def test_variant_equivalence_on_strong_signal(self):
        # All four variants must agree on where the strongest correlation
        # is, even if they fragment it differently.
        data = simulate_energy(days=2, seed=1, minutes_per_sample=4, event_density=2.0)
        x, y = data.pair("clothes_washer", "dryer")
        cfg = TycosConfig(
            sigma=0.35, s_min=20, s_max=120, td_max=10, jitter=1e-3, seed=0
        )
        spans = []
        for noise in (False, True):
            for incremental in (False, True):
                res = Tycos(cfg, use_noise=noise, use_incremental=incremental).search(x, y)
                merged = merge_overlapping([r.window for r in res.windows])
                assert merged, (noise, incremental)
                biggest = max(merged, key=lambda w: w.size)
                spans.append(biggest)
        anchor = spans[0]
        for other in spans[1:]:
            assert anchor.overlap_fraction(other) > 0 or abs(anchor.start - other.start) < 200

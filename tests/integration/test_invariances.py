"""Property tests of the system's information-theoretic invariances.

These pin down behavior that follows from theory, not implementation:
MI's invariance under affine maps, symmetry in its arguments, and the
search's equivariance under time shifts of its input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Tycos, TycosConfig, ksg_mi
from repro.mi.histogram import histogram_mi


class TestMiInvariances:
    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_approximate_affine_invariance(self, scale, shift):
        # True MI is exactly affine-invariant; the KSG *estimator* is only
        # approximately so, because rescaling one axis reshapes its
        # (anisotropic) max-norm neighbor balls.  The estimate must stay
        # within a small band -- a shift alone must not change it at all.
        rng = np.random.default_rng(7)
        x = rng.normal(size=300)
        y = 0.7 * x + 0.7 * rng.normal(size=300)
        base = ksg_mi(x, y)
        # A shift preserves all pairwise distances; only floating-point
        # rounding of the shifted differences can flip near-tied neighbor
        # choices, so the estimate moves by at most a whisker.
        assert ksg_mi(x + shift, y) == pytest.approx(base, abs=0.01)
        assert ksg_mi(scale * x + shift, y) == pytest.approx(base, abs=0.12)

    def test_symmetry(self, correlated_gaussian):
        x, y = correlated_gaussian
        assert ksg_mi(x, y) == pytest.approx(ksg_mi(y, x), abs=1e-9)

    def test_histogram_symmetry(self, correlated_gaussian):
        x, y = correlated_gaussian
        assert histogram_mi(x, y) == pytest.approx(histogram_mi(y, x), abs=1e-9)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_permutation_of_pairs_preserves_mi(self, seed):
        # MI sees the joint sample as a set; pair order is irrelevant.
        rng = np.random.default_rng(seed)
        x = rng.normal(size=120)
        y = 0.5 * x + rng.normal(size=120)
        perm = rng.permutation(120)
        assert ksg_mi(x[perm], y[perm]) == pytest.approx(ksg_mi(x, y), abs=1e-9)


class TestSearchEquivariance:
    def _planted(self, shift=0):
        rng = np.random.default_rng(3)
        n = 400
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, 100)
        x[120:220] = seg
        y[124:224] = seg + 0.01 * rng.normal(size=100)
        if shift:
            x = np.roll(x, shift)
            y = np.roll(y, shift)
        return x, y

    def test_time_shift_moves_windows_accordingly(self):
        cfg = TycosConfig(
            sigma=0.5, s_min=20, s_max=150, td_max=6,
            init_delay_step=1, significance_permutations=10, seed=0,
        )
        base = Tycos(cfg).search(*self._planted(shift=0))
        shifted = Tycos(cfg).search(*self._planted(shift=50))
        assert base.windows and shifted.windows
        base_best = max(base.windows, key=lambda r: r.nmi).window
        shifted_best = max(shifted.windows, key=lambda r: r.nmi).window
        # The strongest window tracks the planted region in both runs.
        assert 110 <= base_best.start <= 230
        assert 160 <= shifted_best.start <= 280
        assert base_best.delay == shifted_best.delay == 4

    def test_scaling_y_does_not_change_detection(self):
        # Exact window identity is not guaranteed (the KSG estimator is
        # only approximately scale-invariant), but the detected *regions*
        # and delays must agree.
        cfg = TycosConfig(
            sigma=0.5, s_min=20, s_max=150, td_max=6,
            init_delay_step=1, significance_permutations=10, seed=0,
        )
        x, y = self._planted()
        a = Tycos(cfg).search(x, y)
        b = Tycos(cfg).search(x, 1000.0 * y - 7.0)
        assert a.windows and b.windows
        best_a = max(a.windows, key=lambda r: r.nmi).window
        best_b = max(b.windows, key=lambda r: r.nmi).window
        assert best_a.overlap_fraction(best_b) > 0.3
        assert best_a.delay == best_b.delay

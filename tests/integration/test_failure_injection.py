"""Failure injection: hostile inputs at every public API boundary.

A production library's error behavior is part of its contract: bad inputs
must fail fast with a clear message -- never a silent wrong answer, never
an opaque numpy traceback three layers down.
"""

import numpy as np
import pytest

from repro import PairView, Tycos, TycosConfig, brute_force_search, ksg_mi, normalized_mi
from repro.analysis import chunk_pair, scan_pairs
from repro.baselines.amic import amic_search
from repro.baselines.mass import mass_distance_profile
from repro.baselines.matrix_profile import matrix_profile_ab
from repro.baselines.pearson import pcc, sliding_pcc
from repro.mi.cmi import ksg_cmi
from repro.mi.histogram import histogram_mi
from repro.mi.kde import kde_mi


NAN_SERIES = np.array([0.1, np.nan, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] * 5)
INF_SERIES = np.array([0.1, np.inf, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] * 5)
GOOD_SERIES = np.linspace(0, 1, 50)


class TestNanInfRejection:
    def test_ksg_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ksg_mi(NAN_SERIES, GOOD_SERIES)

    def test_ksg_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            ksg_mi(GOOD_SERIES, INF_SERIES)

    def test_pairview_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            PairView(NAN_SERIES, GOOD_SERIES)

    def test_search_rejects_nan(self):
        cfg = TycosConfig(sigma=0.3, s_min=8, s_max=20, td_max=1)
        with pytest.raises(ValueError, match="finite"):
            Tycos(cfg).search(NAN_SERIES, GOOD_SERIES)


class TestEmptyAndTiny:
    def test_search_on_empty_series(self):
        cfg = TycosConfig(sigma=0.3, s_min=8, s_max=20, td_max=1)
        with pytest.raises(ValueError, match="non-empty"):
            Tycos(cfg).search(np.empty(0), np.empty(0))

    def test_brute_force_on_tiny_series(self):
        # Shorter than s_min: nothing to enumerate, empty result.
        cfg = TycosConfig(sigma=0.3, s_min=20, s_max=40, td_max=1)
        rng = np.random.default_rng(0)
        result = brute_force_search(rng.normal(size=10), rng.normal(size=10), cfg)
        assert result.windows == []

    def test_amic_on_tiny_series(self):
        cfg = TycosConfig(sigma=0.3, s_min=20, s_max=40, td_max=0)
        rng = np.random.default_rng(0)
        result = amic_search(rng.normal(size=10), rng.normal(size=10), cfg)
        assert result.windows == []

    def test_normalized_mi_on_two_points(self):
        assert 0.0 <= normalized_mi(np.array([0.0, 1.0]), np.array([0.0, 1.0])) <= 1.0


class TestDegenerateValues:
    def test_constant_series_everywhere(self):
        flat = np.ones(60)
        # Estimators must produce finite numbers, not NaN, on zero-variance
        # inputs.
        assert np.isfinite(histogram_mi(flat, flat))
        assert pcc(flat, flat) == 0.0
        assert np.all(np.isfinite(mass_distance_profile(np.ones(10), flat)))
        profile, _ = matrix_profile_ab(flat, flat, 8)
        assert np.all(np.isfinite(profile))

    def test_search_on_constant_series_with_jitter(self):
        cfg = TycosConfig(sigma=0.5, s_min=8, s_max=20, td_max=1, jitter=1e-6)
        result = Tycos(cfg).search(np.ones(60), np.ones(60))
        # Jittered constants are pure noise: nothing significant.
        assert isinstance(result.windows, list)

    def test_kde_on_near_constant(self):
        values = np.ones(50)
        values[0] = 1.0 + 1e-12
        assert np.isfinite(kde_mi(values, values))

    def test_cmi_with_constant_conditioning(self, rng):
        x = rng.normal(size=100)
        y = x + 0.1 * rng.normal(size=100)
        z = np.zeros(100)
        # Conditioning on a constant = unconditional MI; must stay finite.
        assert np.isfinite(ksg_cmi(x, y, z))


class TestStructuralMisuse:
    def test_sliding_pcc_delay_out_of_range(self, rng):
        x = rng.normal(size=30)
        # A delay that leaves no aligned samples yields an empty profile.
        assert sliding_pcc(x, x, window=10, delay=29).size == 0

    def test_chunking_misuse(self, rng):
        with pytest.raises(ValueError, match="exceed overlap"):
            list(chunk_pair(rng.normal(size=10), rng.normal(size=10), chunk=3, overlap=3))

    def test_scan_pairs_with_empty_collection(self):
        cfg = TycosConfig(sigma=0.3, s_min=8, s_max=20, td_max=1)
        report = scan_pairs({}, cfg)
        assert report.findings == []

"""Bench: regenerate Table 4 (accuracy of TYCOS_L and TYCOS_LN).

Prints the similarity percentages per data size and asserts the paper's
shape: the heuristic recovers the bulk of the exact result and the noise
theory gives up little of the heuristic's output.
"""

import numpy as np

from repro.experiments.table4 import run_table4


def test_table4_accuracy(benchmark, scale):
    sizes = (300, 500, 800) if scale == "full" else (300, 500)
    result = benchmark.pedantic(
        run_table4, kwargs=dict(sizes=sizes, seed=0), iterations=1, rounds=1
    )
    print()
    print(result.to_text())

    l_vs_bf = [r.l_vs_bf_synthetic for r in result.rows] + [
        r.l_vs_bf_real for r in result.rows
    ]
    ln_vs_l = [r.ln_vs_l_synthetic for r in result.rows] + [
        r.ln_vs_l_real for r in result.rows
    ]
    # Paper: 88-98 % and 90-100 %.  The Python reproduction at reduced
    # scale must stay in the same qualitative band: clearly closer to
    # "found almost everything" than to chance.
    assert np.mean(l_vs_bf) >= 0.6, l_vs_bf
    assert min(l_vs_bf) >= 0.4, l_vs_bf
    assert np.mean(ln_vs_l) >= 0.5, ln_vs_l

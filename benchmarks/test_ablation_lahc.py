"""Ablation: LAHC history length and idle budget.

DESIGN.md lists L_h and T_maxIdle as tunables; this bench sweeps both on
one dataset and reports runtime and output size, verifying the search
stays functional across the grid (the paper gives no values, so the
defaults are justified empirically).
"""

import pytest

from repro.core.config import TycosConfig
from repro.core.tycos import tycos_lmn
from repro.experiments.datasets import dataset_pair


@pytest.mark.parametrize("history_length", [1, 5, 20])
@pytest.mark.parametrize("max_idle", [2, 5])
def test_lahc_knobs(benchmark, history_length, max_idle):
    x, y = dataset_pair("synthetic1", 500, seed=0)
    # td_max covers the dataset's planted delay (25).
    config = TycosConfig(
        sigma=0.4,
        s_min=16,
        s_max=96,
        td_max=30,
        history_length=history_length,
        max_idle=max_idle,
        init_delay_step=1,
        seed=0,
    )

    result = benchmark.pedantic(
        lambda: tycos_lmn(config).search(x, y), iterations=1, rounds=1
    )
    # The planted relations must be found under every knob setting.
    assert len(result.windows) > 0
    print(
        f"\nL_h={history_length} T_maxIdle={max_idle}: "
        f"{len(result.windows)} windows, "
        f"{result.stats.windows_evaluated} evals, "
        f"{result.stats.runtime_seconds:.2f}s"
    )

"""Bench: regenerate Table 1 (relation types identified per method).

Prints the full detection matrix and asserts the paper's structural
claims: TYCOS detects everything at both delays; AMIC detects everything
at delay 0 and nothing at the large delay; PCC/MASS detect nothing
delayed; MatrixProfile's delayed detections are confined to affine shapes.
"""

from repro.data.relations import RELATIONS, relation_names
from repro.experiments.table1 import run_table1


def _delays(scale):
    return (0, 150) if scale == "full" else (0, 60)


def _segment(scale):
    return 150 if scale == "full" else 100


def test_table1_matrix(benchmark, scale):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(delays=_delays(scale), segment_length=_segment(scale), seed=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.to_text())

    delay0, delay_big = result.delays

    dependents = [r for r in relation_names() if RELATIONS[r].dependent]
    # TYCOS: every relation, both delays.
    for relation in dependents:
        assert result.detected("TYCOS", relation, delay0), f"TYCOS missed {relation} @0"
        assert result.detected("TYCOS", relation, delay_big), f"TYCOS missed {relation} delayed"
    # Correct silence on the independent placebo.
    assert result.detected("TYCOS", "independent", delay0)
    assert result.detected("TYCOS", "independent", delay_big)

    # AMIC: everything at delay 0, nothing delayed.
    for relation in dependents:
        assert result.detected("AMIC", relation, delay0), f"AMIC missed {relation} @0"
        assert not result.detected("AMIC", relation, delay_big), f"AMIC false hit {relation}"

    # PCC and MASS: nothing delayed, and blind to the non-functional circle.
    for method in ("PCC", "MASS"):
        assert not result.detected(method, "circle", delay0)
        for relation in dependents:
            assert not result.detected(method, relation, delay_big), (method, relation)

    # MatrixProfile: detects the delayed linear relation, misses the
    # delayed non-linear ones (quadratic, circle, sine, cross, quartic).
    assert result.detected("MatrixProfile", "linear", delay_big)
    for relation in ("quadratic", "circle", "sine", "cross", "quartic"):
        assert not result.detected("MatrixProfile", relation, delay_big), relation

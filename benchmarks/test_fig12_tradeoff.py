"""Bench: regenerate Fig. 12 (accuracy vs runtime-gain trade-off)."""

from repro.experiments.fig12 import run_fig12


def test_fig12_tradeoff(benchmark, scale):
    n = 700 if scale == "full" else 450
    result = benchmark.pedantic(
        run_fig12,
        kwargs=dict(
            ratios=(0.05, 0.15, 0.25, 0.4, 0.6, 0.8),
            n=n,
            datasets=("energy", "smartcity"),
            seed=0,
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.to_text())

    for ds in ("energy", "smartcity"):
        acc = result.accuracy(ds)
        gain = result.runtime_gain(ds)
        # The paper's justification for epsilon = sigma/4: at ratio 0.25
        # accuracy remains high while a material share of runtime is saved.
        operating = result.ratios.index(0.25)
        assert acc[operating] >= 0.5, (ds, acc)
        assert gain[operating] >= 0.1, (ds, gain)
        # The extreme ratio trades accuracy for speed relative to the
        # conservative end.
        assert gain[-1] >= gain[0] - 0.1, (ds, gain)

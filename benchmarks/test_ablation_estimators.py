"""Ablation: KSG vs histogram vs KDE mutual information estimators.

Reproduces the Section-3.1 justification for choosing KSG (per Papana &
Kugiumtzis): at a fixed sample size, KSG has the smallest error against
the closed-form Gaussian MI, and it does so at a runtime far below the
O(m^2)-with-big-constants KDE.
"""

import numpy as np
import pytest

from repro.mi.histogram import histogram_mi
from repro.mi.kde import kde_mi
from repro.mi.ksg import ksg_mi

_TRUTH = -0.5 * np.log(1 - 0.64)  # rho = 0.8 bivariate Gaussian
_ESTIMATORS = {"ksg": ksg_mi, "histogram": histogram_mi, "kde": kde_mi}


def _sample(seed, m=400):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=m)
    y = 0.8 * x + 0.6 * rng.normal(size=m)
    return x, y


@pytest.mark.parametrize("name", sorted(_ESTIMATORS))
def test_estimator_accuracy_and_runtime(benchmark, name):
    estimator = _ESTIMATORS[name]

    def run():
        errors = []
        for seed in range(6):
            x, y = _sample(seed)
            errors.append(abs(estimator(x, y) - _TRUTH))
        return float(np.mean(errors))

    mean_error = benchmark.pedantic(run, iterations=1, rounds=3)
    print(f"\n{name}: mean |error| vs Gaussian truth = {mean_error:.4f}")
    # Sanity floor: every estimator is in the right ballpark ...
    assert mean_error < 0.30
    # ... and KSG meets the paper's accuracy claim outright.
    if name == "ksg":
        assert mean_error < 0.08

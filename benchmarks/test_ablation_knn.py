"""Ablation: brute-force vs grid vs k-d tree k-NN backends in KSG.

DESIGN.md calls out the neighbor-search backend as a design choice; this
bench times all three on the same data and asserts they agree exactly,
showing where the O(m^2) vectorized scan stops being competitive and how
the two O(m log m) structures compare (the grid wins on well-spread data,
the k-d tree degrades more gracefully under clustering).
"""

import numpy as np
import pytest

from repro.mi.ksg import ksg_mi


@pytest.mark.parametrize("m", [512, 4096])
@pytest.mark.parametrize("backend", ["bruteforce", "grid", "kdtree"])
def test_knn_backend_runtime(benchmark, m, backend):
    rng = np.random.default_rng(0)
    x = rng.normal(size=m)
    y = 0.7 * x + 0.7 * rng.normal(size=m)

    value = benchmark.pedantic(
        ksg_mi, args=(x, y), kwargs=dict(backend=backend), iterations=1, rounds=3
    )
    reference = ksg_mi(x, y, backend="bruteforce")
    assert value == pytest.approx(reference, abs=1e-10)

"""Ablation: incremental vs from-scratch MI over a sliding window.

The Section-7 claim in microbenchmark form: slide a window of size m one
step at a time and compare the per-step cost of the sliding engine against
recomputing KSG from scratch.  The gap must grow with m.
"""

import numpy as np
import pytest

from repro.mi.incremental import SlidingKSG
from repro.mi.ksg import ksg_mi

_STEPS = 40


def _slide_batch(x, y, m):
    out = 0.0
    for s in range(_STEPS):
        out = ksg_mi(x[s : s + m], y[s : s + m])
    return out


def _slide_incremental(x, y, m):
    eng = SlidingKSG(k=4)
    eng.reset(x[:m], y[:m], ids=range(m))
    out = eng.mi()
    for s in range(1, _STEPS):
        eng.add(m + s - 1, x[m + s - 1], y[m + s - 1])
        eng.remove(s - 1)
        out = eng.mi()
    return out


@pytest.mark.parametrize("m", [128, 512])
@pytest.mark.parametrize("mode", ["batch", "incremental"])
def test_sliding_mi_cost(benchmark, m, mode):
    rng = np.random.default_rng(0)
    n = m + _STEPS + 1
    x = rng.normal(size=n)
    y = 0.6 * x + 0.8 * rng.normal(size=n)

    fn = _slide_batch if mode == "batch" else _slide_incremental
    value = benchmark.pedantic(fn, args=(x, y, m), iterations=1, rounds=3)
    # Exactness: last window's estimate matches the batch value bit-for-bit.
    expected = ksg_mi(x[_STEPS - 1 : _STEPS - 1 + m], y[_STEPS - 1 : _STEPS - 1 + m])
    assert value == pytest.approx(expected, abs=1e-12)

"""Bench: regenerate Fig. 13 (effect of sigma, s_max and td_max)."""

from repro.experiments.fig13 import run_fig13_sigma, run_fig13_smax, run_fig13_tdmax


def test_fig13a_sigma(benchmark, scale):
    n = 900 if scale == "full" else 600
    result = benchmark.pedantic(
        run_fig13_sigma,
        kwargs=dict(sigmas=(0.2, 0.3, 0.4, 0.5, 0.6), n=n, seed=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.to_text())
    counts = result.window_counts()
    # Fewer (stronger) windows as sigma rises; weak monotone overall.
    assert counts[-1] <= counts[0]
    assert counts == sorted(counts, reverse=True) or counts[-1] < counts[0]


def test_fig13b_smax_convergence(benchmark, scale):
    n = 900 if scale == "full" else 600
    result = benchmark.pedantic(
        run_fig13_smax,
        kwargs=dict(s_maxes=(32, 64, 96, 128, 192), n=n, seed=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.to_text())
    counts = result.window_counts()
    # Convergence: once every correlation fits, the output stabilizes.
    assert abs(counts[-1] - counts[-2]) <= max(2, counts[-2] // 3), counts


def test_fig13c_tdmax_convergence(benchmark, scale):
    n = 900 if scale == "full" else 600
    result = benchmark.pedantic(
        run_fig13_tdmax,
        kwargs=dict(td_maxes=(6, 12, 24, 36, 48), n=n, seed=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.to_text())
    counts = result.window_counts()
    runtimes = result.runtimes()
    assert abs(counts[-1] - counts[-2]) <= max(2, counts[-2] // 3), counts
    # Runtime flattens past the largest true lag (paper Fig. 13c): the last
    # doubling of td_max must not double the runtime.
    assert runtimes[-1] <= 2.5 * runtimes[-2], runtimes

"""Bench: TYCOS_LMN scalability in data size.

The paper's abstract claims TYCOS "can scale to large datasets"; the exact
baselines cannot accompany it to large n (that is the point of Fig 10), so
this bench tracks TYCOS_LMN alone over a growing series and asserts the
growth is tame: the per-sample cost must not blow up with n (the search is
a chain of restarts with bounded local work, so runtime should grow close
to linearly in n).
"""

from repro.core.config import TycosConfig
from repro.core.tycos import tycos_lmn
from repro.experiments.datasets import dataset_pair


def test_tycos_scalability(benchmark, scale):
    sizes = (1000, 2000, 4000) if scale == "full" else (600, 1200, 2400)

    def run():
        times = []
        for n in sizes:
            x, y = dataset_pair("synthetic1", n, seed=0)
            config = TycosConfig(
                sigma=0.45,
                s_min=24,
                s_max=120,
                td_max=20,
                init_delay_step=2,
                significance_permutations=0,
                seed=0,
            )
            result = tycos_lmn(config).search(x, y)
            times.append(result.stats.runtime_seconds)
        return times

    times = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for n, t in zip(sizes, times):
        print(f"  n={n}: {t:.2f}s ({1000 * t / n:.2f} ms/sample)")
    # Per-sample cost must stay within a small factor across a 4x size
    # growth (linear-ish scaling, paper's "scales to large datasets").
    per_sample = [t / n for t, n in zip(times, sizes)]
    assert per_sample[-1] <= 3.0 * per_sample[0], per_sample

"""Bench: regenerate Fig. 10 (Brute Force / MatrixProfile / TYCOS_LMN).

Prints the runtime series over data sizes and asserts the paper's shape:
TYCOS_LMN is orders of magnitude faster than the exact brute force, with
a gap that widens as the data grows.
"""

from repro.experiments.fig10 import run_fig10


def test_fig10_scalability(benchmark, scale):
    sizes = (300, 500, 800) if scale == "full" else (250, 400)
    result = benchmark.pedantic(
        run_fig10, kwargs=dict(sizes=sizes, seed=0), iterations=1, rounds=1
    )
    print()
    print(result.to_text())

    speedups = result.speedup("BruteForce")
    # Two orders of magnitude over brute force, per the paper's headline.
    assert speedups[-1] >= 100, speedups
    # The gap widens with data size.
    assert speedups[-1] > speedups[0] * 0.8, speedups
    # TYCOS_LMN's absolute runtime stays in interactive territory.
    assert max(result.runtimes["TYCOS_LMN"]) < 10.0

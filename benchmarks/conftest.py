"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures at a
laptop-friendly scale and prints the resulting rows/series, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
artifacts.  Set ``TYCOS_BENCH_SCALE=full`` for sizes closer to the paper.
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("TYCOS_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def scale() -> str:
    """'quick' (default) or 'full' (closer to paper sizes)."""
    return bench_scale()

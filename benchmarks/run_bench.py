"""Tracked performance baseline for the parallel scan + MI kernel caches.

Runs a battery of pinned-seed benchmarks and emits one JSON document:

* **pairwise** -- a synthetic sensor collection scanned with
  ``scan_pairs`` serially and at several worker counts, timing the
  end-to-end scan and the speedup over serial.
* **gate** -- a small fixed scalar-path search whose windows/second is
  the regression reference for ``--check-against``; it is identical in
  smoke and full mode so CI numbers compare against committed ones.
* **kernel** -- micro-benchmarks of the three PR-3 kernel caches
  (shared digamma table, maintained sorted marginals, per-delay
  distance workspace), each asserting the cached path returns *exactly*
  the reference path's floats before reporting its speedup.
* **scoring** -- one full TYCOS search per cache ablation: the scalar
  per-window scorer with every cache off (the pre-PR cost model), the
  scalar scorer with caches on, and the batched neighborhood scorer
  with each cache switched off in turn and with all of them on.  Every
  ablation must return the same windows and MI values; only the time
  may change.
* **segmented** -- one long pair searched whole, then with its timeline
  sharded into overlapping segments: the sequential reference stitcher
  and the process-pool path at the same segment count.  Every parallel
  row must reproduce its sequential reference byte-exactly (windows, MI
  floats, and order) before its speedup is reported -- the n_segments=2
  row doubles as a worker-pickling canary in CI smoke runs.
* **multiscale** -- the PR-5 coarse-to-fine search on a pinned AR(1)
  pair with long planted delayed-copy episodes, exhaustive first and
  then per ``coarse_factor``.  Every multiscale row must recover 100%
  of the exhaustive search's windows at bit-identical MI/NMI floats
  *before* its pruning ratio or speedup is reported, and the largest
  factor must cut ``full_windows_evaluated`` by at least the section's
  ``min_reduction`` -- a recall or determinism regression fails the
  benchmark instead of flattering it.
* **screen** -- the PR-9 batched stage-1 screen on the cascade
  workload: the per-pair ``fft_screen_score`` loop (which doubles as
  the bit-identity reference -- the batched scores must equal it
  exactly before any timing is recorded) against the collection-level
  batched pass (state build + blocked ``batched_screen_scores``),
  reporting pairs/second for each and the batched speedup.
* **cascade** -- the PR-8 all-pairs prescreen cascade on a >=64-series
  synthetic collection: the unscreened ``scan_pairs`` reference first,
  then ``cascade_scan`` with the default conservative margin.  The
  recall gate is asserted *before* any speedup is reported: every
  correlated pair the unscreened scan finds must survive the screens
  with a byte-identical ``PairFinding``, the per-stage counters must
  account for every screened pair, and the FFT stage must prune at
  least the section's ``min_prune`` fraction of all pairs before any
  KSG estimate runs.  Since PR 9 the timings themselves are also
  gated: the end-to-end speedup must reach ``min_speedup_required``
  and the screen phase must cost less than the search phase.  A
  recall, accounting, or throughput regression fails the benchmark
  instead of flattering it.
* **planner** -- the PR-10 execution-planner section: every plan shape
  (plain, segmented, coarse-to-fine, and the composed
  coarse-inside-each-segment strategy) executed through
  ``execute_plan`` on a pinned episodic pair.  Parity is asserted
  before any timing is recorded: the plain/segmented/coarse rows must
  be byte-identical to their legacy wrapper counterparts
  (``Tycos.search`` with the equivalent arguments), and the composed
  row must be byte-identical to its sequential definition (each
  segment span searched coarse-to-fine by a jitter-free segment
  engine, merged by the planner's stitcher).  The timings are
  single-run and advisory -- the regression reference is the gate row,
  and the plan-driven throughput floor lives in the cascade_stage3
  section.
* **cascade_stage3** -- the PR-10 plan-driven cascade refinement: an
  episodic-coupling collection (couplings planted as long delayed-copy
  episodes at pinned positions, so the FFT screen catches the coupled
  pairs while the quiet stretches between episodes are exactly what a
  coarse pre-pass prunes) scanned by ``cascade_scan`` twice -- stage 3
  plain (the PR-9 behavior) and stage 3 through ``plan="coarse=8"``.
  The correlated-pair sets must be identical before any timing is
  reported, and the multiscale stage 3 must beat the plain stage 3's
  search phase by the section's ``min_speedup_required`` (both runs
  single-core, ``n_jobs=1`` -- the speedup is pruning, not
  parallelism).
* **backends** -- the PR-7 compiled-kernel section: per-kernel
  numpy-vs-backend micro-benches (parity asserted before any speedup
  row), the tracked gate workload searched once per backend with
  bit-identity asserted for float64 engines and the 1e-6 MI tolerance
  for the float32 tier, and the batched delta-ring scorer timed per
  engine.  When a *compiled* numba suite is active the section
  additionally enforces the PR's floors: >= 1.5x batched-scorer
  throughput over the legacy engine, and float32 >= 1.2x over
  float64-numba.  Without numba the rows record the numpy-reference
  engine (speedups ~1.0) and the floors are not asserted -- parity
  always is.

Usage::

    python benchmarks/run_bench.py --output BENCH_PR10.json  # full baseline
    python benchmarks/run_bench.py --smoke                   # CI health check
    python benchmarks/run_bench.py --smoke --check-against BENCH_PR10.json

``--check-against`` compares this run's **gate** windows/second with the
committed document's and exits non-zero when it regressed by more than
``--max-regression`` (default 0.30, i.e. 30%).

Every timing is the best of ``--repeats`` runs (min, not mean: the
minimum is the least noisy estimator of the cost floor on a shared
machine).  The host's CPU count is recorded in the document because
multi-worker speedups are only physical on multi-core hosts; on a
single-core container the parallel rows measure dispatch overhead, not
parallelism.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.analysis.cascade import cascade_scan, fft_screen_score  # noqa: E402
from repro.analysis.multiscale import search_multiscale  # noqa: E402
from repro.analysis.pairwise import scan_pairs  # noqa: E402
from repro.analysis.planner import (  # noqa: E402
    _segment_engine,
    _stitch,
    composed_plan,
    execute_plan,
    multiscale_plan,
    plain_plan,
    segmented_plan,
)
from repro.analysis.screen_state import (  # noqa: E402
    ScreenGeometry,
    batched_screen_scores,
    build_screen_states,
)
from repro.analysis.segmented import search_segmented  # noqa: E402
from repro.core.config import TycosConfig  # noqa: E402
from repro.core.segmentation import segment_spans  # noqa: E402
from repro.core.thresholds import BatchScorer  # noqa: E402
from repro.core.tycos import Tycos, tycos_lm, tycos_lmn  # noqa: E402
from repro.core.window import PairView, TimeDelayWindow  # noqa: E402
from repro.mi.backends import numpy_backend  # noqa: E402
from repro.mi.backends.dispatch import (  # noqa: E402
    backend_metadata,
    get_kernels,
    numba_version,
)
from repro.mi.digamma import digamma_direct, shared_digamma_table  # noqa: E402
from repro.mi.ksg import KSGEstimator  # noqa: E402
from repro.mi.neighbors import (  # noqa: E402
    PairDistanceWorkspace,
    chebyshev_knn_bruteforce,
    marginal_counts,
)

SCHEMA = "tycos-bench-pr10/1"

#: Throughput floor of every dispatched micro-kernel row relative to its
#: legacy/reference path.  The dispatcher must never serve a slower
#: kernel (the PR-8 numpy grid_knn slot ran at 0.53x and was rerouted);
#: the floor sits below 1.0 only to absorb timing noise on equal paths.
_DISPATCH_KERNEL_FLOOR = 0.8

#: Cache knobs of the scoring ablations.  Keys are TycosConfig fields.
_ALL_CACHES_OFF = {
    "use_digamma_table": False,
    "use_sorted_marginals": False,
    "workspace_cache_size": 0,
}

#: (row label, batched scoring?, config overrides) per scoring ablation.
_SCORING_VARIANTS: List[Tuple[str, bool, Dict[str, Any]]] = [
    ("scalar_baseline", False, dict(_ALL_CACHES_OFF)),
    ("scalar", False, {}),
    ("batched_no_digamma", True, {"use_digamma_table": False}),
    ("batched_no_sorted_marginals", True, {"use_sorted_marginals": False}),
    ("batched_no_workspace_cache", True, {"workspace_cache_size": 0}),
    ("batched", True, {}),
]


def make_collection(n_series: int, length: int, seed: int) -> Dict[str, Any]:
    """A pinned-seed sensor collection with genuine delayed couplings.

    Half the series are lag-shifted noisy copies of shared random walks
    (so the scan finds real windows and exercises the full search), the
    rest are independent noise (so the pre-filter and early exits are
    exercised too).
    """
    rng = np.random.default_rng(seed)
    series: Dict[str, Any] = {}
    n_coupled = max(2, n_series // 2)
    base = np.cumsum(rng.normal(size=length))
    for i in range(n_coupled):
        lag = (i * 3) % 12
        series[f"coupled{i}"] = np.roll(base, lag) + rng.normal(scale=0.15, size=length)
    for i in range(n_series - n_coupled):
        series[f"noise{i}"] = rng.normal(size=length)
    return series


def make_cascade_collection(
    n_series: int, length: int, seed: int, n_coupled: Optional[int] = None
) -> Dict[str, Any]:
    """The pinned all-pairs cascade workload: few couplings, much noise.

    ``n_coupled`` of the series (default: a quarter) are lag-shifted
    noisy copies of one shared random walk (every coupled-coupled pair
    is genuinely correlated); the rest are independent white noise.
    The coupled count is a knob because it fixes the bench's speedup
    *ceiling*: surviving coupled pairs must be searched in full by
    screened and unscreened scans alike, so their search cost is the
    irreducible floor of any cascade run.  The PR-8 pinning (a quarter
    of 64 series = 120 coupled pairs) spent ~75% of the unscreened
    scan inside those survivors, capping any screening win at ~1.34x;
    the PR-9 sections pin a small fixed coupled set instead, so the
    prunable majority -- the regime the prescreen exists for --
    dominates the wall clock and the recall gate still has a real
    survivor set to verify byte-equality on.
    """
    rng = np.random.default_rng(seed)
    series: Dict[str, Any] = {}
    if n_coupled is None:
        n_coupled = max(2, n_series // 4)
    base = np.cumsum(rng.normal(size=length))
    for i in range(n_coupled):
        lag = (i * 3) % 12
        series[f"coupled{i}"] = np.roll(base, lag) + rng.normal(scale=0.15, size=length)
    for i in range(n_series - n_coupled):
        series[f"noise{i}"] = rng.normal(size=length)
    return series


#: (start, length, delay) of the delayed-copy episodes of the multiscale
#: workload, laid out on its pinned 8000-sample timeline.
_MULTISCALE_EPISODES: List[Tuple[int, int, int]] = [
    (1200, 300, 5),
    (4200, 280, -7),
    (6800, 320, -3),
]

_MULTISCALE_LENGTH = 8000


def make_multiscale_pair(seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """The pinned coarse-to-fine workload: smooth background, long episodes.

    Two independent AR(1) walks (phi=0.9) with three long delayed-copy
    episodes planted in ``y``.  This is the regime PAA aggregation
    preserves: block means keep a 300-sample episode visible at 1/8
    resolution, while the quiet stretches between episodes are exactly
    what the coarse pre-pass exists to prune.  Short white-noise blips
    would be *below* a coarse level's resolution by construction -- that
    boundary is documented, not benchmarked.
    """
    return make_episode_pair(_MULTISCALE_LENGTH, _MULTISCALE_EPISODES, seed)


def _ar1_walk(rng: np.random.Generator, n: int, phi: float = 0.9) -> np.ndarray:
    """A smooth AR(1) series: the structure PAA aggregation preserves."""
    shocks = rng.normal(size=n)
    out = np.empty(n)
    acc = 0.0
    for i in range(n):
        acc = phi * acc + shocks[i]
        out[i] = acc
    return out


def make_episode_pair(
    length: int, episodes: List[Tuple[int, int, int]], seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """An AR(1) pair with ``(start, length, delay)`` episodes planted in y.

    The parameterized form of :func:`make_multiscale_pair`: the planner
    section runs it at full size in full mode and on a shorter pinned
    layout in smoke mode.
    """
    rng = np.random.default_rng(seed)
    x = _ar1_walk(rng, length)
    y = _ar1_walk(rng, length)
    for start, ep_length, delay in episodes:
        y[start + delay : start + delay + ep_length] = (
            x[start : start + ep_length] + 0.2 * rng.normal(size=ep_length)
        )
    return x, y


def make_episodic_collection(
    n_series: int,
    length: int,
    seed: int,
    n_coupled: int,
    episodes: List[Tuple[int, int]],
) -> Dict[str, Any]:
    """The cascade_stage3 workload: episodic couplings, prunable elsewhere.

    Each coupled series is its own AR(1) walk with noisy copies of one
    shared base walk's ``(start, length)`` episodes planted at a small
    per-series lag, so every coupled-coupled pair correlates *only
    inside the episodes* (relative delays of 0-4 samples, within
    ``td_max``).  The remaining series are white noise.  This is the
    regime the plan-driven stage 3 exists for: the FFT screen catches
    the coupled pairs on their episode windows, while the long quiet
    stretches between episodes -- independent AR(1) backgrounds with no
    joint structure -- are exactly what the coarse pre-pass prunes.
    The PR-8/9 cascade workload (whole-series ``np.roll`` couplings)
    would defeat the pre-pass by construction: structure everywhere
    leaves nothing to prune.
    """
    rng = np.random.default_rng(seed)
    base = _ar1_walk(rng, length)
    series: Dict[str, Any] = {}
    for i in range(n_coupled):
        own = _ar1_walk(rng, length)
        lag = (i * 2) % 6
        for start, ep_length in episodes:
            own[start + lag : start + lag + ep_length] = (
                base[start : start + ep_length] + 0.2 * rng.normal(size=ep_length)
            )
        series[f"coupled{i}"] = own
    for i in range(n_series - n_coupled):
        series[f"noise{i}"] = rng.normal(size=length)
    return series


def make_scoring_pair(length: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """The pinned coupled pair every scoring/gate search runs on."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=length))
    x = base + rng.normal(scale=0.1, size=length)
    y = np.roll(base, 7) + rng.normal(scale=0.1, size=length)
    return x, y


def best_of(repeats: int, fn: Callable[[], None]) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls to ``fn``."""
    took = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        took.append(time.perf_counter() - start)
    return min(took)


def bench_pairwise(
    n_series: int,
    length: int,
    config: TycosConfig,
    jobs: List[int],
    repeats: int,
    seed: int,
) -> Dict[str, Any]:
    series = make_collection(n_series, length, seed)
    n_pairs = n_series * (n_series - 1) // 2
    runs: Dict[str, Dict[str, float]] = {}
    reference = None
    serial_seconds = None
    for n_jobs in jobs:
        report_box: List[Any] = []

        def run() -> None:
            report_box.append(scan_pairs(series, config, n_jobs=n_jobs))

        seconds = best_of(repeats, run)
        report = report_box[-1]
        if reference is None:
            reference = report
            serial_seconds = seconds
        elif (report.findings, report.skipped, report.failures) != (
            reference.findings,
            reference.skipped,
            reference.failures,
        ):
            raise AssertionError(f"n_jobs={n_jobs} report differs from serial")
        label = "serial" if n_jobs == 1 else f"n_jobs={n_jobs}"
        runs[label] = {
            "seconds": round(seconds, 4),
            "pairs_per_second": round(n_pairs / seconds, 3),
        }
        if n_jobs != 1 and serial_seconds is not None:
            runs[label]["speedup_vs_serial"] = round(serial_seconds / seconds, 3)
    return {
        "series": n_series,
        "series_length": length,
        "pairs": n_pairs,
        "findings": len(reference.findings) if reference is not None else 0,
        "runs": runs,
    }


def bench_gate(seed: int) -> Dict[str, Any]:
    """The fixed regression-gate workload (same in smoke and full mode).

    A small scalar-path search with every cache on: the configuration CI
    exercises on every push, so its windows/second can be compared against
    the committed document regardless of which mode produced it.  Always
    best-of-3: the gate exists to be compared, so it gets the extra
    repeats even in smoke mode.
    """
    length = 400
    config = TycosConfig(sigma=0.3, s_min=8, s_max=40, td_max=8, jitter=1e-6, seed=seed)
    x, y = make_scoring_pair(length, seed + 1)
    box: List[Any] = []

    def run() -> None:
        box.append(Tycos(config, batched_scoring=False).search(x, y))

    seconds = best_of(3, run)
    windows = box[-1].stats.windows_evaluated
    return {
        "series_length": length,
        "seconds": round(seconds, 4),
        "windows_evaluated": windows,
        "windows_per_second": round(windows / seconds, 1),
    }


def _timed_loop(repeats: int, calls: int, fn: Callable[[], None]) -> float:
    """Best-of-``repeats`` seconds for ``calls`` invocations of ``fn``."""

    def run() -> None:
        for _ in range(calls):
            fn()

    return best_of(repeats, run)


def bench_kernel(repeats: int) -> Dict[str, Any]:
    """Micro-benchmarks of the kernel caches, exact-equality asserted.

    Each entry times the cached path against its reference path on pinned
    data and verifies first that both return identical floats -- the
    caches are amortizations, never approximations.
    """
    rng = np.random.default_rng(97)
    out: Dict[str, Any] = {}

    # -- shared digamma table vs direct scipy evaluations -------------- #
    # End-to-end equality first (the table must never change an estimate),
    # then the timing of the evaluation unit itself: a per-window batch of
    # integer digamma arguments served by table gather vs scipy ufunc.
    m = 512
    base = np.cumsum(rng.normal(size=m))
    x = base + rng.normal(scale=0.1, size=m)
    y = np.roll(base, 5) + rng.normal(scale=0.1, size=m)
    with_table = KSGEstimator(k=4, use_digamma_table=True)
    without_table = KSGEstimator(k=4, use_digamma_table=False)
    if with_table.mi(x, y) != without_table.mi(x, y):
        raise AssertionError("digamma table changed an MI estimate")
    table = shared_digamma_table()
    counts = rng.integers(1, 2000, size=m)
    if not np.array_equal(table.values(counts), digamma_direct(counts)):
        raise AssertionError("digamma table diverged from scipy evaluations")
    calls = 200
    out["digamma_table"] = _kernel_row(
        samples=m,
        calls=calls,
        seconds_on=_timed_loop(repeats, calls, lambda: table.values(counts)),
        seconds_off=_timed_loop(repeats, calls, lambda: digamma_direct(counts)),
    )

    # -- presorted marginal projections vs a per-call sort -------------- #
    # The cached path's unit of work: marginal_counts with a maintained /
    # amortized sorted projection skips its internal O(m log m) sort.
    # (The engine-level wiring -- MarginalIndex under churn -- is covered
    # by exact-equality tests; the timing story lives in this kernel.)
    m_marg = 2048
    values = np.cumsum(rng.normal(size=m_marg))
    radii = np.abs(rng.normal(scale=0.3, size=m_marg)) + 1e-3
    presorted = np.sort(values)
    if not np.array_equal(
        marginal_counts(values, radii, strict=False, presorted=presorted),
        marginal_counts(values, radii, strict=False),
    ):
        raise AssertionError("presorted marginal counts diverged from the sort path")
    calls = 200
    out["sorted_marginals"] = _kernel_row(
        samples=m_marg,
        calls=calls,
        seconds_on=_timed_loop(
            repeats,
            calls,
            lambda: marginal_counts(values, radii, strict=False, presorted=presorted),
        ),
        seconds_off=_timed_loop(
            repeats, calls, lambda: marginal_counts(values, radii, strict=False)
        ),
    )

    # -- shared distance workspace vs per-window brute force ------------ #
    union = 200
    window = 64
    ux = np.cumsum(rng.normal(size=union))
    uy = np.roll(ux, 2) + rng.normal(scale=0.1, size=union)
    workspace = PairDistanceWorkspace(ux, uy)
    offsets = list(range(0, union - window, 4))
    for offset in offsets:
        served = workspace.knn(offset, window, 4)
        direct = chebyshev_knn_bruteforce(
            ux[offset : offset + window], uy[offset : offset + window], 4
        )
        if not (
            np.array_equal(served.kth_distance, direct.kth_distance)
            and np.array_equal(served.eps_x, direct.eps_x)
            and np.array_equal(served.eps_y, direct.eps_y)
            and np.array_equal(served.indices, direct.indices)
        ):
            raise AssertionError("workspace knn diverged from brute force")

    def serve_all() -> None:
        for offset in offsets:
            workspace.knn(offset, window, 4)

    def brute_all() -> None:
        for offset in offsets:
            chebyshev_knn_bruteforce(
                ux[offset : offset + window], uy[offset : offset + window], 4
            )

    out["workspace"] = _kernel_row(
        samples=window,
        calls=len(offsets),
        seconds_on=best_of(repeats, serve_all),
        seconds_off=best_of(repeats, brute_all),
    )
    return out


def _kernel_row(samples: int, calls: int, seconds_on: float, seconds_off: float) -> Dict[str, Any]:
    return {
        "samples": samples,
        "calls": calls,
        "seconds_cached": round(seconds_on, 5),
        "seconds_reference": round(seconds_off, 5),
        "speedup": round(seconds_off / seconds_on, 3),
        "identical": True,  # asserted before timing
    }


def bench_scoring(length: int, config: TycosConfig, repeats: int, seed: int) -> Dict[str, Any]:
    x, y = make_scoring_pair(length, seed)
    out: Dict[str, Any] = {"series_length": length}
    reference: Optional[Any] = None
    baseline_seconds: Optional[float] = None
    for label, batched, overrides in _SCORING_VARIANTS:
        variant_config = config.scaled(**overrides) if overrides else config
        box: List[Any] = []

        def run() -> None:
            box.append(Tycos(variant_config, batched_scoring=batched).search(x, y))

        seconds = best_of(repeats, run)
        result = box[-1]
        snapshot = [(r.window, r.mi, r.nmi) for r in result.windows]
        if reference is None:
            reference = snapshot
            baseline_seconds = seconds
        elif snapshot != reference:
            raise AssertionError(f"scoring ablation {label!r} changed the search result")
        stats = result.stats
        row: Dict[str, Any] = {
            "seconds": round(seconds, 4),
            "windows_evaluated": stats.windows_evaluated,
            "windows_per_second": round(stats.windows_evaluated / seconds, 1),
        }
        if batched:
            row["workspace_builds"] = stats.workspace_builds
            row["workspace_hits"] = stats.workspace_hits
        if label != "scalar_baseline" and baseline_seconds is not None:
            row["speedup_vs_scalar_baseline"] = round(baseline_seconds / seconds, 3)
        out[label] = row
    return out


def bench_segmented(
    length: int,
    config: TycosConfig,
    rows: List[Tuple[int, int]],
    repeats: int,
    seed: int,
) -> Dict[str, Any]:
    """Intra-pair segmentation: sequential stitcher vs process pool.

    One long pinned pair is searched unsegmented first, then once per
    ``(n_segments, n_jobs)`` row.  Rows with ``n_jobs=1`` run the
    sequential reference stitcher and define the expected result for
    their segment count; every ``n_jobs>1`` row is asserted byte-equal
    to that reference (same windows, MI floats, and order) before its
    speedup is recorded, so a worker-pickling or shared-memory
    regression fails the benchmark instead of skewing it.
    """
    x, y = make_scoring_pair(length, seed)
    out: Dict[str, Any] = {"series_length": length}
    box: List[Any] = []

    def run_unsegmented() -> None:
        box.append(Tycos(config).search(x, y))

    unsegmented_seconds = best_of(repeats, run_unsegmented)
    unsegmented = box[-1]
    out["unsegmented"] = {
        "seconds": round(unsegmented_seconds, 4),
        "windows": len(unsegmented.windows),
        "windows_evaluated": unsegmented.stats.windows_evaluated,
    }

    references: Dict[int, List[Any]] = {}
    sequential_seconds: Dict[int, float] = {}
    for n_segments, n_jobs in rows:
        def run() -> None:
            box.append(
                search_segmented(x, y, config, n_segments=n_segments, n_jobs=n_jobs)
            )

        seconds = best_of(repeats, run)
        result = box[-1]
        snapshot = [(r.window, r.mi, r.nmi) for r in result.windows]
        label = f"n_segments={n_segments},n_jobs={n_jobs}"
        if n_jobs == 1:
            references[n_segments] = snapshot
            sequential_seconds[n_segments] = seconds
        elif snapshot != references.get(n_segments):
            raise AssertionError(
                f"segmented row {label!r} diverged from its sequential reference"
            )
        stats = result.stats
        row: Dict[str, Any] = {
            "seconds": round(seconds, 4),
            "windows": len(result.windows),
            "windows_evaluated": stats.windows_evaluated,
            "segments": stats.segments,
            "stitch_dedups": stats.stitch_dedups,
            "stitch_rescores": stats.stitch_rescores,
        }
        if n_jobs != 1:
            row["identical_to_sequential"] = True  # asserted above
            row["speedup_vs_sequential"] = round(
                sequential_seconds[n_segments] / seconds, 3
            )
        out[label] = row
    return out


def bench_multiscale(
    factors: List[int],
    use_noise: bool,
    repeats: int,
    min_reduction: float,
    seed: int,
) -> Dict[str, Any]:
    """Coarse-to-fine search vs exhaustive: recall parity asserted first.

    The pinned pair is searched exhaustively once, then once per
    ``coarse_factor``.  Each multiscale row is accepted only if it
    recovers every exhaustive window at bit-identical (MI, NMI) floats;
    only then are its pruning ratio and speedup recorded.  The largest
    factor must additionally cut ``full_windows_evaluated`` by at least
    ``min_reduction`` -- the quantity the PR's acceptance bar is stated
    in, so a pruning regression fails the run rather than shrinking a
    number nobody reads.
    """
    config = TycosConfig(
        sigma=0.75,
        s_min=32,
        s_max=96,
        td_max=8,
        jitter=1e-6,
        seed=3,
        init_delay_step=1,
        coarse_sigma_ratio=0.85,
    )
    engine = (tycos_lmn if use_noise else tycos_lm)(config)
    x, y = make_multiscale_pair(seed)
    box: List[Any] = []

    def run_exhaustive() -> None:
        box.append(engine.search(x, y))

    exhaustive_seconds = best_of(repeats, run_exhaustive)
    exhaustive = box[-1]
    reference = {
        (r.window.start, r.window.end, r.window.delay): (r.mi, r.nmi)
        for r in exhaustive.windows
    }
    out: Dict[str, Any] = {
        "series_length": _MULTISCALE_LENGTH,
        "episodes": len(_MULTISCALE_EPISODES),
        "variant": "lmn" if use_noise else "lm",
        "sigma": config.sigma,
        "coarse_sigma_ratio": config.coarse_sigma_ratio,
        "exhaustive": {
            "seconds": round(exhaustive_seconds, 4),
            "windows": len(exhaustive.windows),
            "full_windows_evaluated": exhaustive.stats.full_windows_evaluated,
        },
    }
    last_reduction = 0.0
    for factor in factors:

        def run() -> None:
            box.append(search_multiscale(x, y, engine=engine, coarse_factor=factor))

        seconds = best_of(repeats, run)
        result = box[-1]
        scores = {
            (r.window.start, r.window.end, r.window.delay): (r.mi, r.nmi)
            for r in result.windows
        }
        missing = sorted(k for k in reference if k not in scores)
        if missing:
            raise AssertionError(
                f"multiscale coarse_factor={factor} lost exhaustive windows: {missing}"
            )
        drifted = sorted(k for k in reference if scores[k] != reference[k])
        if drifted:
            raise AssertionError(
                f"multiscale coarse_factor={factor} drifted scores at: {drifted}"
            )
        stats = result.stats
        last_reduction = exhaustive.stats.full_windows_evaluated / max(
            1, stats.full_windows_evaluated
        )
        out[f"coarse_factor={factor}"] = {
            "seconds": round(seconds, 4),
            "windows": len(result.windows),
            "recall": 1.0,  # asserted above
            "identical_scores": True,  # asserted above
            "coarse_windows_evaluated": stats.coarse_windows_evaluated,
            "full_windows_evaluated": stats.full_windows_evaluated,
            "refined_cells": stats.refined_cells,
            "cells_pruned": stats.cells_pruned,
            "full_eval_reduction": round(last_reduction, 3),
            "total_eval_reduction": round(
                exhaustive.stats.full_windows_evaluated
                / max(1, stats.windows_evaluated),
                3,
            ),
            "speedup_vs_exhaustive": round(exhaustive_seconds / seconds, 3),
        }
    if last_reduction < min_reduction:
        raise AssertionError(
            f"multiscale coarse_factor={factors[-1]} reduced full evaluations by "
            f"only {last_reduction:.2f}x (< required {min_reduction:.2f}x)"
        )
    out["min_reduction_required"] = min_reduction
    return out


def bench_screen(
    n_series: int,
    length: int,
    window: int,
    td_max: int,
    repeats: int,
    seed: int,
    n_coupled: Optional[int] = None,
) -> Dict[str, Any]:
    """Batched vs per-pair stage-1 screen throughput: identity gated.

    The per-pair loop over ``fft_screen_score`` is the reference: its
    one pass both produces the scores the batched path must reproduce
    **bit-identically** (asserted before any timing is recorded) and is
    the reference timing -- it dominates this section's wall clock, so
    it runs once, not best-of.  The batched pass replays a cascade's
    stage 1 exactly: build every series' screen state, then score all
    pairs in ``screen_block``-sized batches.
    """
    from itertools import combinations

    series = make_cascade_collection(n_series, length, seed, n_coupled)
    names = list(series)
    pair_names = list(combinations(names, 2))
    index = {name: i for i, name in enumerate(names)}
    pair_idx = [(index[s], index[t]) for s, t in pair_names]
    geometry = ScreenGeometry(length=length, window=window, td_max=td_max)
    block = TycosConfig().screen_block

    start = time.perf_counter()
    reference = [
        fft_screen_score(series[s], series[t], window, td_max) for s, t in pair_names
    ]
    per_pair_seconds = time.perf_counter() - start

    def batched_pass() -> List[float]:
        by_name = build_screen_states(series, geometry)
        states = [by_name[name] for name in names]
        scores: List[float] = []
        for lo in range(0, len(pair_idx), block):
            scores.extend(
                batched_screen_scores(states, pair_idx[lo : lo + block], geometry)
            )
        return scores

    if batched_pass() != reference:
        diverged = [
            pair_names[i]
            for i, (got, want) in enumerate(zip(batched_pass(), reference))
            if got != want
        ]
        raise AssertionError(
            f"batched screen diverged from fft_screen_score at: {diverged[:5]}"
        )
    batched_seconds = _timed_loop(repeats, 1, batched_pass)

    n_pairs = len(pair_names)
    return {
        "series": n_series,
        "series_length": length,
        "pairs": n_pairs,
        "screen_window": window,
        "td_max": td_max,
        "screen_block": block,
        "identical": True,  # asserted above
        "per_pair": {
            "seconds": round(per_pair_seconds, 4),
            "pairs_per_second": round(n_pairs / per_pair_seconds, 3),
        },
        "batched": {
            "seconds": round(batched_seconds, 4),
            "pairs_per_second": round(n_pairs / batched_seconds, 3),
            "speedup_vs_per_pair": round(per_pair_seconds / batched_seconds, 3),
        },
    }


def bench_cascade(
    n_series: int,
    length: int,
    screen_window: int,
    min_prune: float,
    min_speedup: float,
    seed: int,
    n_coupled: Optional[int] = None,
) -> Dict[str, Any]:
    """Prescreen cascade vs unscreened scan: recall gated, then timed.

    The unscreened ``scan_pairs`` over the full collection is the
    reference.  The cascade run is accepted only when (1) every
    correlated pair the reference finds survives the screens with a
    byte-identical ``PairFinding``, (2) every surviving pair's finding
    is byte-identical to the reference's, (3) the per-stage counters
    account for every screened pair, and (4) the FFT stage pruned at
    least ``min_prune`` of all pairs *before any KSG estimate* -- only
    then are the timings and speedup recorded.  Two floors are then
    enforced on the timings themselves: the end-to-end speedup over the
    unscreened scan must reach ``min_speedup``, and the cascade's
    screen phase must cost less wall clock than its search phase
    (``report.phase_seconds``) -- the batched stage 1 exists precisely
    so screening is never the dominant cost again.  The scans run once
    each (not best-of): the two quadratic scans dominate the bench wall
    clock, and the gate row -- not this section -- is the regression
    reference.
    """
    series = make_cascade_collection(n_series, length, seed, n_coupled)
    # Pinned section config: s_min=24 + 10 permutations keep finite-sample
    # KSG noise below sigma on white-noise pairs, so the reference scan's
    # correlated set is the planted couplings, not estimator flukes.
    config = TycosConfig(
        sigma=0.5, s_min=24, s_max=48, td_max=8, jitter=1e-6, seed=seed,
        significance_permutations=10,
    )
    n_pairs = n_series * (n_series - 1) // 2

    start = time.perf_counter()
    reference = scan_pairs(series, config)
    unscreened_seconds = time.perf_counter() - start
    start = time.perf_counter()
    screened = cascade_scan(series, config, screen_window=screen_window)
    cascade_seconds = time.perf_counter() - start

    reference_by_pair = {(f.source, f.target): f for f in reference.findings}
    screened_by_pair = {(f.source, f.target): f for f in screened.findings}
    lost = sorted(
        (f.source, f.target)
        for f in reference.correlated()
        if (f.source, f.target) not in screened_by_pair
    )
    if lost:
        raise AssertionError(f"cascade pruned correlated pairs: {lost}")
    drifted = sorted(
        pair for pair, finding in screened_by_pair.items()
        if finding != reference_by_pair[pair]
    )
    if drifted:
        raise AssertionError(f"cascade changed surviving findings at: {drifted}")
    counted = (
        screened.pairs_pruned_fft + screened.pairs_pruned_nmi + screened.pairs_searched
    )
    if screened.pairs_screened != n_pairs or counted != n_pairs:
        raise AssertionError(
            f"cascade counters do not account for every pair: screened="
            f"{screened.pairs_screened} fft={screened.pairs_pruned_fft} "
            f"nmi={screened.pairs_pruned_nmi} searched={screened.pairs_searched} "
            f"expected {n_pairs}"
        )
    fft_prune_fraction = screened.pairs_pruned_fft / n_pairs
    if fft_prune_fraction < min_prune:
        raise AssertionError(
            f"FFT screen pruned only {fft_prune_fraction:.2%} of pairs "
            f"(< required {min_prune:.0%})"
        )
    speedup = unscreened_seconds / cascade_seconds
    if speedup < min_speedup:
        raise AssertionError(
            f"cascade speedup {speedup:.2f}x over the unscreened scan "
            f"< required {min_speedup:.1f}x"
        )
    screen_seconds = screened.phase_seconds.get("screen", 0.0)
    search_seconds = screened.phase_seconds.get("search", 0.0)
    if screen_seconds >= search_seconds:
        raise AssertionError(
            f"cascade screen phase ({screen_seconds:.2f}s) cost at least as "
            f"much as its search phase ({search_seconds:.2f}s); screening "
            "must not dominate"
        )
    return {
        "series": n_series,
        "series_length": length,
        "coupled_series": sum(1 for name in series if name.startswith("coupled")),
        "pairs": n_pairs,
        "screen_window": screen_window,
        "screen_margin": config.screen_margin,
        "correlated_pairs": len(reference.correlated()),
        "unscreened": {
            "seconds": round(unscreened_seconds, 4),
            "pairs_per_second": round(n_pairs / unscreened_seconds, 3),
        },
        "cascade": {
            "seconds": round(cascade_seconds, 4),
            "pairs_per_second": round(n_pairs / cascade_seconds, 3),
            "screen_seconds": round(screen_seconds, 4),
            "search_seconds": round(search_seconds, 4),
            "pairs_screened": screened.pairs_screened,
            "pairs_pruned_fft": screened.pairs_pruned_fft,
            "pairs_pruned_nmi": screened.pairs_pruned_nmi,
            "pairs_searched": screened.pairs_searched,
            "fft_prune_fraction": round(fft_prune_fraction, 4),
            "recall": 1.0,  # asserted above
            "identical_findings": True,  # asserted above
            "speedup_vs_unscreened": round(speedup, 3),
        },
        "min_prune_required": min_prune,
        "min_speedup_required": min_speedup,
    }


def bench_planner(
    length: int,
    episodes: List[Tuple[int, int, int]],
    use_noise: bool,
    seed: int,
) -> Dict[str, Any]:
    """Every plan shape through ``execute_plan``: parity gated, then timed.

    Each row asserts its correctness contract before its wall clock is
    recorded: the plain, segmented, and coarse rows must reproduce the
    legacy wrapper (``Tycos.search`` with the equivalent arguments)
    byte-exactly -- same windows, MI/NMI floats, and order -- and the
    composed ``segments=4,coarse=8`` row must reproduce its sequential
    definition: the timeline sharded into spans, every span searched
    coarse-to-fine by a jitter-free segment engine, the per-span
    results merged by the planner's stitcher.  The timings are
    single-run and advisory (the regression reference is the gate row);
    what this section attests is that routing every strategy through
    one plan executor costs nothing in correctness.
    """
    config = TycosConfig(
        sigma=0.75,
        s_min=32,
        s_max=96,
        td_max=8,
        jitter=1e-6,
        seed=3,
        init_delay_step=1,
        coarse_sigma_ratio=0.85,
    )
    engine = (tycos_lmn if use_noise else tycos_lm)(config)
    x, y = make_episode_pair(length, episodes, seed)

    def snapshot(result: Any) -> List[Tuple[Any, float, float]]:
        return [(r.window, r.mi, r.nmi) for r in result.windows]

    out: Dict[str, Any] = {
        "series_length": length,
        "episodes": len(episodes),
        "variant": "lmn" if use_noise else "lm",
    }

    wrapper_rows: List[Tuple[str, Any, Callable[[], Any]]] = [
        ("plain", plain_plan(), lambda: engine.search(x, y)),
        (
            "segments=4",
            segmented_plan(4),
            lambda: engine.search(x, y, n_segments=4),
        ),
        (
            "coarse=8",
            multiscale_plan(8),
            lambda: engine.search(x, y, coarse_factor=8),
        ),
    ]
    for label, plan, legacy in wrapper_rows:
        reference = legacy()
        start = time.perf_counter()
        planned = execute_plan(x, y, engine=engine, plan=plan)
        seconds = time.perf_counter() - start
        if snapshot(planned) != snapshot(reference):
            raise AssertionError(
                f"plan {label!r} diverged from its legacy wrapper"
            )
        if planned.stats.plan != plan.spec():
            raise AssertionError(
                f"plan {label!r} recorded stats.plan={planned.stats.plan!r}"
            )
        out[label] = {
            "fingerprint": plan.fingerprint(),
            "seconds": round(seconds, 4),
            "windows": len(planned.windows),
            "windows_evaluated": planned.stats.windows_evaluated,
            "identical_to_wrapper": True,  # asserted above
        }

    # -- composed: coarse-to-fine inside each segment ------------------- #
    plan = composed_plan(4, 8)
    start = time.perf_counter()
    composed = execute_plan(x, y, engine=engine, plan=plan)
    seconds = time.perf_counter() - start
    pair = PairView(x, y, jitter=config.jitter, seed=config.seed)
    spans = segment_spans(pair.n, 4, config.segment_overlap())
    seg_engine = _segment_engine(engine)
    per_segment = [
        execute_plan(
            pair.x[lo:hi], pair.y[lo:hi], engine=seg_engine, plan=multiscale_plan(8)
        )
        for lo, hi in spans
    ]
    reference = _stitch(engine, pair, spans, per_segment, started=0.0)
    if snapshot(composed) != snapshot(reference):
        raise AssertionError(
            "composed plan diverged from its sequential definition"
        )
    out["segments=4,coarse=8"] = {
        "fingerprint": plan.fingerprint(),
        "seconds": round(seconds, 4),
        "windows": len(composed.windows),
        "windows_evaluated": composed.stats.windows_evaluated,
        "coarse_windows_evaluated": composed.stats.coarse_windows_evaluated,
        "cells_pruned": composed.stats.cells_pruned,
        "identical_to_sequential_definition": True,  # asserted above
    }
    return out


def bench_cascade_stage3(
    n_series: int,
    length: int,
    episodes: List[Tuple[int, int]],
    n_coupled: int,
    screen_window: int,
    min_speedup: float,
    use_noise: bool,
    seed: int,
) -> Dict[str, Any]:
    """Plan-driven stage 3 vs plain stage 3: pair-set parity, then the floor.

    The episodic collection is cascade-scanned twice on a single core
    (``n_jobs=1``, so the speedup is pruning, not parallelism): once
    with the default plain stage 3 (the PR-9 behavior, byte-compatible
    by construction since ``plan=None`` changes nothing) and once with
    stage 3 refining every survivor through ``plan="coarse=8"``.  The
    gates, in order: both runs' correlated-pair sets must be identical
    and non-empty, the screens must actually prune (otherwise the
    section measures nothing), the planned report must carry the plan
    provenance in its metadata, and only then is the search-phase
    speedup recorded -- and it must reach ``min_speedup``.
    """
    series = make_episodic_collection(n_series, length, seed, n_coupled, episodes)
    config = TycosConfig(
        sigma=0.75,
        s_min=32,
        s_max=96,
        td_max=8,
        jitter=1e-6,
        seed=3,
        init_delay_step=1,
        coarse_sigma_ratio=0.85,
    )
    variant = tycos_lmn if use_noise else tycos_lm
    n_pairs = n_series * (n_series - 1) // 2

    plain = cascade_scan(
        series, config, screen_window=screen_window, engine=variant(config)
    )
    planned = cascade_scan(
        series,
        config,
        screen_window=screen_window,
        engine=variant(config),
        plan="coarse=8",
    )

    plain_pairs = sorted((f.source, f.target) for f in plain.correlated())
    planned_pairs = sorted((f.source, f.target) for f in planned.correlated())
    if not plain_pairs:
        raise AssertionError("stage-3 workload found no correlated pairs")
    if plain_pairs != planned_pairs:
        raise AssertionError(
            f"plan-driven stage 3 changed the correlated-pair set: "
            f"plain={plain_pairs} planned={planned_pairs}"
        )
    for report, label in ((plain, "plain"), (planned, "planned")):
        counted = (
            report.pairs_pruned_fft + report.pairs_pruned_nmi + report.pairs_searched
        )
        if report.pairs_screened != n_pairs or counted != n_pairs:
            raise AssertionError(
                f"stage-3 {label} counters do not account for every pair"
            )
    if plain.pairs_pruned_fft == 0:
        raise AssertionError(
            "stage-3 screens pruned nothing; the workload must leave a "
            "survivor set smaller than the collection"
        )
    if planned.metadata.get("plan") != "coarse=8" or "plan_fingerprint" not in (
        planned.metadata
    ):
        raise AssertionError("planned cascade report is missing plan provenance")

    plain_search = plain.phase_seconds.get("search", 0.0)
    planned_search = planned.phase_seconds.get("search", 0.0)
    speedup = plain_search / planned_search if planned_search else 0.0
    if speedup < min_speedup:
        raise AssertionError(
            f"plan-driven stage 3 speedup {speedup:.2f}x over the plain "
            f"stage 3 < required {min_speedup:.1f}x"
        )
    return {
        "series": n_series,
        "series_length": length,
        "coupled_series": n_coupled,
        "episodes": len(episodes),
        "pairs": n_pairs,
        "screen_window": screen_window,
        "variant": "lmn" if use_noise else "lm",
        "correlated_pairs": len(plain_pairs),
        "identical_pair_sets": True,  # asserted above
        "plan": planned.metadata["plan"],
        "plan_fingerprint": planned.metadata["plan_fingerprint"],
        "plain_stage3": {
            "search_seconds": round(plain_search, 4),
            "pairs_searched": plain.pairs_searched,
        },
        "multiscale_stage3": {
            "search_seconds": round(planned_search, 4),
            "pairs_searched": planned.pairs_searched,
            "speedup_vs_plain": round(speedup, 3),
        },
        "min_speedup_required": min_speedup,
    }


#: Gate-search engines of the backends section: (row label, backend,
#: precision).  The first row is the float64 bit-identity reference.
_BACKEND_ROWS: List[Tuple[str, str, str]] = [
    ("numpy_legacy", "numpy", "float64"),
    ("numba_float64", "numba", "float64"),
    ("numba_float32", "numba", "float32"),
]

#: Throughput floors enforced only when a compiled numba suite is active.
_NUMBA_SCORER_FLOOR = 1.5
_F32_OVER_F64_FLOOR = 1.2
_F32_MI_TOLERANCE = 1e-6


def bench_backends(repeats: int, seed: int) -> Dict[str, Any]:
    """Compiled backend vs legacy numpy: parity gated, then timed.

    Every row asserts its correctness contract *before* any timing is
    recorded: float64 engines must reproduce the legacy search
    bit-identically, the float32 tier must stay within
    ``_F32_MI_TOLERANCE`` of the float64 MI on identical windows, and
    each micro-benched kernel must match the legacy/numpy reference on
    its pinned inputs.  The numba throughput floors are enforced only
    when a compiled suite is actually active (``engine == "numba"``);
    on a numba-less host the numba rows are served by the numpy
    reference and the floors would measure nothing.
    """
    rng = np.random.default_rng(seed)
    out: Dict[str, Any] = {"metadata": backend_metadata("numba", "float64")}
    kernels = get_kernels("numba", "float64")
    compiled = kernels is not None and kernels.compiled

    # -- per-kernel micro-benches: numpy reference vs served engine ----- #
    m, k = 257, 4
    base = np.cumsum(rng.normal(size=m))
    x = np.ascontiguousarray(base + rng.normal(scale=0.1, size=m))
    y = np.ascontiguousarray(np.roll(base, 3) + rng.normal(scale=0.1, size=m))
    micro: Dict[str, Any] = {}

    assert kernels is not None  # backend="numba" always resolves
    served_nx, served_ny = kernels.window_counts(x, y, k)
    ref_nx, ref_ny = numpy_backend.window_counts(x, y, k)
    if not (np.array_equal(served_nx, ref_nx) and np.array_equal(served_ny, ref_ny)):
        raise AssertionError("backend window_counts diverged from the numpy reference")
    calls = 50
    micro["window_counts"] = _kernel_row(
        samples=m,
        calls=calls,
        seconds_on=_timed_loop(repeats, calls, lambda: kernels.window_counts(x, y, k)),
        seconds_off=_timed_loop(repeats, calls, lambda: numpy_backend.window_counts(x, y, k)),
    )

    radii = np.abs(rng.normal(scale=0.3, size=m)) + 1e-3
    order = np.sort(x)
    served_counts = kernels.marginal(x, radii, False, order)
    ref_counts = numpy_backend.marginal_counts_ref(x, radii, False, order)
    if not np.array_equal(served_counts, ref_counts):
        raise AssertionError("backend marginal_counts diverged from the numpy reference")
    calls = 200
    micro["marginal_counts"] = _kernel_row(
        samples=m,
        calls=calls,
        seconds_on=_timed_loop(repeats, calls, lambda: kernels.marginal(x, radii, False, order)),
        seconds_off=_timed_loop(
            repeats, calls, lambda: numpy_backend.marginal_counts_ref(x, radii, False, order)
        ),
    )

    offsets = np.arange(0, 120, 8, dtype=np.int64)
    sizes = np.full(offsets.size, 64, dtype=np.int64)
    ks = np.full(offsets.size, k, dtype=np.int64)
    served_cluster = kernels.cluster_counts(x, y, offsets, sizes, ks)
    ref_cluster = numpy_backend.cluster_counts(x, y, offsets, sizes, ks)
    if not (
        np.array_equal(served_cluster[0], ref_cluster[0])
        and np.array_equal(served_cluster[1], ref_cluster[1])
    ):
        raise AssertionError("backend cluster_counts diverged from the numpy reference")
    calls = 50
    micro["cluster_counts"] = _kernel_row(
        samples=int(sizes.sum()),
        calls=calls,
        seconds_on=_timed_loop(
            repeats, calls, lambda: kernels.cluster_counts(x, y, offsets, sizes, ks)
        ),
        seconds_off=_timed_loop(
            repeats, calls, lambda: numpy_backend.cluster_counts(x, y, offsets, sizes, ks)
        ),
    )

    legacy_grid = chebyshev_knn_bruteforce(x, y, k)
    served_grid = kernels.grid_knn(x, y, k)
    if not (
        np.array_equal(served_grid[0], legacy_grid.kth_distance)
        and np.array_equal(served_grid[1], legacy_grid.eps_x)
        and np.array_equal(served_grid[2], legacy_grid.eps_y)
    ):
        raise AssertionError("backend grid_knn diverged from the legacy geometry")
    calls = 20
    micro["grid_knn"] = _kernel_row(
        samples=m,
        calls=calls,
        seconds_on=_timed_loop(repeats, calls, lambda: kernels.grid_knn(x, y, k)),
        seconds_off=_timed_loop(repeats, calls, lambda: chebyshev_knn_bruteforce(x, y, k)),
    )
    # No dispatched kernel may run slower than the legacy/reference path
    # it replaces -- the whole point of routing through the dispatcher.
    for kernel_name, row in micro.items():
        if row["speedup"] < _DISPATCH_KERNEL_FLOOR:
            raise AssertionError(
                f"dispatched {kernel_name} ran at {row['speedup']:.2f}x its "
                f"reference path (< required {_DISPATCH_KERNEL_FLOOR}x); the "
                "dispatcher must never serve a slower kernel"
            )
    out["kernel_floor"] = _DISPATCH_KERNEL_FLOOR
    out["kernels"] = micro

    # -- batched delta-ring scorer throughput per engine ---------------- #
    # A same-delay cluster batch, the unit the fused cluster kernel
    # accelerates.  Fresh scorer per timed call so the LRU cache cannot
    # serve later repeats for free.
    pair = PairView(x, y, jitter=1e-6, seed=seed)
    scorer_config = TycosConfig(s_min=8, s_max=48, td_max=6)
    batch = [
        TimeDelayWindow(start=s, end=s + 40, delay=2) for s in range(8, 180, 6)
    ]

    def scorer_values(backend: str, precision: str) -> List[float]:
        config = scorer_config.scaled(backend=backend, precision=precision)
        return BatchScorer(pair, config).value_many(batch)

    legacy_values = scorer_values("numpy", "float64")
    scorer_rows: Dict[str, Any] = {}
    scorer_seconds: Dict[str, float] = {}
    for label, backend, precision in _BACKEND_ROWS:
        values = scorer_values(backend, precision)
        if precision == "float64":
            if values != legacy_values:
                raise AssertionError(f"scorer engine {label!r} changed batched values")
        else:
            worst = max(abs(a - b) for a, b in zip(values, legacy_values))
            if worst > _F32_MI_TOLERANCE:
                raise AssertionError(
                    f"float32 scorer drifted {worst:.2e} (> {_F32_MI_TOLERANCE})"
                )
        seconds = best_of(repeats, lambda b=backend, p=precision: scorer_values(b, p))
        scorer_seconds[label] = seconds
        scorer_rows[label] = {
            "windows": len(batch),
            "seconds": round(seconds, 4),
            "windows_per_second": round(len(batch) / seconds, 1),
        }
        if label != "numpy_legacy":
            scorer_rows[label]["speedup_vs_legacy"] = round(
                scorer_seconds["numpy_legacy"] / seconds, 3
            )
    out["scorer"] = scorer_rows

    # -- tracked gate workload per engine ------------------------------- #
    length = 400
    gx, gy = make_scoring_pair(length, seed + 1)
    gate_rows: Dict[str, Any] = {}
    reference_windows: Optional[List[Tuple[int, int, int, float, float]]] = None
    for label, backend, precision in _BACKEND_ROWS:
        config = TycosConfig(
            sigma=0.3, s_min=8, s_max=40, td_max=8, jitter=1e-6, seed=seed,
            backend=backend, precision=precision,
        )
        box: List[Any] = []

        def run(c: TycosConfig = config) -> None:
            box.append(Tycos(c).search(gx, gy))

        seconds = best_of(repeats, run)
        result = box[-1]
        snapshot = [
            (r.window.start, r.window.end, r.window.delay, r.mi, r.nmi)
            for r in result.windows
        ]
        row: Dict[str, Any] = {
            "seconds": round(seconds, 4),
            "windows": len(result.windows),
            "windows_evaluated": result.stats.windows_evaluated,
            "windows_per_second": round(result.stats.windows_evaluated / seconds, 1),
        }
        if reference_windows is None:
            reference_windows = snapshot
        elif precision == "float64":
            if snapshot != reference_windows:
                raise AssertionError(f"gate engine {label!r} diverged from legacy")
            row["identical_to_legacy"] = True  # asserted above
        else:
            if [w[:3] for w in snapshot] != [w[:3] for w in reference_windows]:
                raise AssertionError(f"gate engine {label!r} changed the window set")
            worst = max(
                abs(a[3] - b[3]) for a, b in zip(snapshot, reference_windows)
            )
            if worst > _F32_MI_TOLERANCE:
                raise AssertionError(
                    f"float32 gate MI drifted {worst:.2e} (> {_F32_MI_TOLERANCE})"
                )
            row["max_mi_delta_vs_float64"] = float(f"{worst:.3e}")
        gate_rows[label] = row
    out["gate"] = gate_rows

    # -- compiled-only throughput floors -------------------------------- #
    out["compiled"] = compiled
    if compiled:
        scorer_speedup = scorer_seconds["numpy_legacy"] / scorer_seconds["numba_float64"]
        if scorer_speedup < _NUMBA_SCORER_FLOOR:
            raise AssertionError(
                f"compiled batched scorer speedup {scorer_speedup:.2f}x "
                f"< required {_NUMBA_SCORER_FLOOR}x"
            )
        f32_speedup = scorer_seconds["numba_float64"] / scorer_seconds["numba_float32"]
        if f32_speedup < _F32_OVER_F64_FLOOR:
            raise AssertionError(
                f"float32 scorer speedup {f32_speedup:.2f}x over float64-numba "
                f"< required {_F32_OVER_F64_FLOOR}x"
            )
        out["floors"] = {
            "scorer_speedup_vs_legacy": round(scorer_speedup, 3),
            "scorer_floor": _NUMBA_SCORER_FLOOR,
            "f32_speedup_vs_f64": round(f32_speedup, 3),
            "f32_floor": _F32_OVER_F64_FLOOR,
        }
    return out


def check_regression(
    document: Dict[str, Any], baseline_path: str, max_regression: float
) -> Optional[str]:
    """Compare this run's gate throughput against a committed document.

    Returns an error message when the gate regressed by more than
    ``max_regression`` (a fraction), or None when it passed.
    """
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return f"cannot read baseline {baseline_path}: {exc}"
    ref = baseline.get("gate", {}).get("windows_per_second")
    if not ref:
        return f"baseline {baseline_path} has no gate.windows_per_second"
    current = document["gate"]["windows_per_second"]
    floor = ref * (1.0 - max_regression)
    if current < floor:
        return (
            f"scalar-path gate regressed: {current:.1f} windows/s vs baseline "
            f"{ref:.1f} (floor {floor:.1f} at {max_regression:.0%} tolerance)"
        )
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes and 2 workers; a CI health check, not a baseline")
    parser.add_argument("--output", default=None,
                        help="write the JSON document here (default: stdout only)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of (default: 3, smoke: 1)")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--check-against", default=None, metavar="PATH",
                        help="committed benchmark JSON to compare the gate row against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="fail when the gate windows/s drops more than this "
                             "fraction below the baseline (default 0.30)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    if repeats < 1:
        parser.error(f"--repeats must be >= 1, got {repeats}")
    if not 0.0 <= args.max_regression < 1.0:
        parser.error(f"--max-regression must be in [0, 1), got {args.max_regression}")
    if args.smoke:
        n_series, length, jobs = 4, 240, [1, 2]
        scoring_length = 400
        segment_rows = [(2, 1), (2, 2)]
        # Smoke keeps the multiscale workload (parity only holds on the
        # tuned pair) but runs the cheaper noise-seeded variant at one
        # factor, so the recall assertion still gates every CI push.
        multiscale_factors, multiscale_noise, multiscale_floor = [8], True, 1.2
        # Smoke shrinks the cascade collection (the two quadratic scans
        # dominate its wall clock) but keeps the recall gate; the pruning
        # floor drops with the pair count because the noise-maximum
        # statistics of the screens concentrate with more comparisons.
        # Three coupled series (three survivor pairs) keep the speedup
        # ceiling well above the 1.5x floor while the survivor search
        # still dwarfs the screen phase, so both timing gates have
        # headroom against CI noise.
        cascade_series, cascade_length, cascade_window, cascade_floor = 24, 240, 120, 0.5
        cascade_coupled, cascade_speedup_floor = 3, 1.5
        # Smoke keeps every planner parity assertion on a shorter pinned
        # episode layout; the stage-3 floor drops to 1.2x because shorter
        # quiet stretches leave the coarse pre-pass less to prune.
        planner_length = 3000
        planner_episodes = [(500, 250, 5), (2000, 260, -3)]
        stage3_series, stage3_length, stage3_coupled = 8, 4000, 3
        stage3_episodes = [(500, 240), (2900, 260)]
        stage3_noise, stage3_floor = True, 1.2
        config = TycosConfig(sigma=0.3, s_min=8, s_max=40, td_max=8, jitter=1e-6, seed=args.seed)
    else:
        n_series, length, jobs = 8, 600, [1, 2, 4]
        scoring_length = 1600
        segment_rows = [(2, 1), (2, 2), (4, 1), (4, 4)]
        multiscale_factors, multiscale_noise, multiscale_floor = [2, 4, 8], False, 2.0
        # Six coupled series pin 15 irreducible survivor searches against
        # ~3 000 prunable noise pairs: the prescreen's design regime.
        # (The PR-8 pinning coupled a quarter of 64 series; its 120
        # survivor searches were ~75% of the unscreened scan, capping
        # any screening speedup at ~1.34x -- see make_cascade_collection.)
        cascade_series, cascade_length, cascade_window, cascade_floor = 80, 400, 200, 0.70
        cascade_coupled, cascade_speedup_floor = 6, 3.0
        # Full mode runs the planner parity rows on the multiscale
        # section's tuned 8000-sample layout, and the stage-3 comparison
        # on the lm variant (like the multiscale section: noise pruning
        # already skips quiet stretches, so lmn understates what the
        # coarse pre-pass buys an exhaustive stage 3).
        planner_length = _MULTISCALE_LENGTH
        planner_episodes = list(_MULTISCALE_EPISODES)
        stage3_series, stage3_length, stage3_coupled = 10, 8000, 3
        stage3_episodes = [(1200, 300), (4200, 280), (6800, 320)]
        stage3_noise, stage3_floor = False, 1.5
        config = TycosConfig(sigma=0.3, s_min=8, s_max=80, td_max=12, jitter=1e-6, seed=args.seed)

    document = {
        "schema": SCHEMA,
        "mode": "smoke" if args.smoke else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numba": numba_version() or "absent",
        },
        "config": {
            "sigma": config.sigma,
            "s_min": config.s_min,
            "s_max": config.s_max,
            "td_max": config.td_max,
            "seed": args.seed,
            "repeats": repeats,
        },
        "pairwise": bench_pairwise(n_series, length, config, jobs, repeats, args.seed),
        "gate": bench_gate(args.seed),
        "kernel": bench_kernel(repeats),
        "scoring": bench_scoring(scoring_length, config, repeats, args.seed + 1),
        "segmented": bench_segmented(
            scoring_length, config, segment_rows, repeats, args.seed + 1
        ),
        # The multiscale workload seed is pinned (not --seed): the recall
        # assertion documents parity on *this* tuned pair, and a different
        # draw would change what the committed numbers attest to.
        "multiscale": bench_multiscale(
            multiscale_factors, multiscale_noise, repeats, multiscale_floor, seed=11
        ),
        "screen": bench_screen(
            cascade_series,
            cascade_length,
            cascade_window,
            td_max=8,
            repeats=repeats,
            seed=args.seed,
            n_coupled=cascade_coupled,
        ),
        "cascade": bench_cascade(
            cascade_series,
            cascade_length,
            cascade_window,
            cascade_floor,
            cascade_speedup_floor,
            args.seed,
            n_coupled=cascade_coupled,
        ),
        # Both PR-10 sections pin their workload seeds (not --seed): the
        # parity and pair-set assertions document behavior on *these*
        # tuned layouts, and a different draw would change what the
        # committed numbers attest to.
        "planner": bench_planner(
            planner_length, planner_episodes, use_noise=True, seed=11
        ),
        "cascade_stage3": bench_cascade_stage3(
            stage3_series,
            stage3_length,
            stage3_episodes,
            stage3_coupled,
            screen_window=256,
            min_speedup=stage3_floor,
            use_noise=stage3_noise,
            seed=2024,
        ),
        "backends": bench_backends(repeats, args.seed),
        "notes": (
            "Timings are best-of-repeats wall clock.  Multi-worker speedup "
            "scales with host cores (see host.cpu_count); on a single-core "
            "host the n_jobs>1 rows measure process-pool overhead.  The "
            "scoring ablations are exact: every row reproduces the same "
            "windows and MI floats, so the deltas are pure kernel cost.  "
            "Segmented n_jobs>1 rows are asserted byte-equal to their "
            "sequential reference before any speedup is reported.  "
            "Multiscale rows are accepted only after recovering 100% of "
            "the exhaustive windows at bit-identical scores, and the "
            "largest factor must meet min_reduction_required on "
            "full_windows_evaluated.  The gate row is the same workload "
            "in smoke and full mode and feeds the --check-against "
            "regression comparison.  The screen section asserts the "
            "batched stage-1 scores bit-identical to the per-pair "
            "fft_screen_score loop before timing either path.  The "
            "cascade row asserts 100% recall "
            "and byte-identical surviving findings against the unscreened "
            "scan, full counter accounting, the FFT-stage pruning "
            "floor (min_prune_required), the end-to-end speedup floor "
            "(min_speedup_required), and screen_seconds < search_seconds "
            "before its numbers are recorded.  "
            "Planner rows assert byte-identity against the legacy "
            "wrappers (composed: against the sequential definition) "
            "before their single-run timings are recorded.  The "
            "cascade_stage3 row asserts identical correlated-pair sets "
            "between the plain and plan-driven stage 3 and enforces the "
            "search-phase speedup floor (min_speedup_required) on a "
            "single core.  "
            "Backend rows assert kernel parity "
            "and search bit-identity (float32: the 1e-6 MI tolerance) "
            "before any speedup is recorded; the numba throughput floors "
            "apply only when host.numba is a real version and the suite "
            "compiled (backends.compiled)."
        ),
    }

    text = json.dumps(document, indent=2, sort_keys=False)
    print(text)
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    if args.check_against is not None:
        error = check_regression(document, args.check_against, args.max_regression)
        if error is not None:
            print(f"REGRESSION: {error}", file=sys.stderr)
            return 1
        print(
            f"regression check passed against {args.check_against} "
            f"(tolerance {args.max_regression:.0%})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tracked performance baseline for the parallel scan + batched scorer.

Runs two pinned-seed benchmarks and emits one JSON document:

* **pairwise** -- a synthetic sensor collection scanned with
  ``scan_pairs`` serially and at several worker counts, timing the
  end-to-end scan and the speedup over serial.
* **scoring** -- one full TYCOS search with the per-window scalar scorer
  (``batched_scoring=False``, the pre-PR engine) versus the batched
  neighborhood scorer, reporting windows/second and the batched speedup.

Usage::

    python benchmarks/run_bench.py --output BENCH_PR2.json   # full baseline
    python benchmarks/run_bench.py --smoke                   # CI smoke run

Every timing is the best of ``--repeats`` runs (min, not mean: the
minimum is the least noisy estimator of the cost floor on a shared
machine).  The host's CPU count is recorded in the document because
multi-worker speedups are only physical on multi-core hosts; on a
single-core container the parallel rows measure dispatch overhead, not
parallelism.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.analysis.pairwise import scan_pairs  # noqa: E402
from repro.core.config import TycosConfig  # noqa: E402
from repro.core.tycos import Tycos  # noqa: E402

SCHEMA = "tycos-bench-pr2/1"


def make_collection(n_series: int, length: int, seed: int) -> Dict[str, Any]:
    """A pinned-seed sensor collection with genuine delayed couplings.

    Half the series are lag-shifted noisy copies of shared random walks
    (so the scan finds real windows and exercises the full search), the
    rest are independent noise (so the pre-filter and early exits are
    exercised too).
    """
    rng = np.random.default_rng(seed)
    series: Dict[str, Any] = {}
    n_coupled = max(2, n_series // 2)
    base = np.cumsum(rng.normal(size=length))
    for i in range(n_coupled):
        lag = (i * 3) % 12
        series[f"coupled{i}"] = np.roll(base, lag) + rng.normal(scale=0.15, size=length)
    for i in range(n_series - n_coupled):
        series[f"noise{i}"] = rng.normal(size=length)
    return series


def best_of(repeats: int, fn: Any) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls to ``fn``."""
    took = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        took.append(time.perf_counter() - start)
    return min(took)


def bench_pairwise(
    n_series: int,
    length: int,
    config: TycosConfig,
    jobs: List[int],
    repeats: int,
    seed: int,
) -> Dict[str, Any]:
    series = make_collection(n_series, length, seed)
    n_pairs = n_series * (n_series - 1) // 2
    runs: Dict[str, Dict[str, float]] = {}
    reference = None
    serial_seconds = None
    for n_jobs in jobs:
        report_box: List[Any] = []

        def run() -> None:
            report_box.append(scan_pairs(series, config, n_jobs=n_jobs))

        seconds = best_of(repeats, run)
        report = report_box[-1]
        if reference is None:
            reference = report
            serial_seconds = seconds
        elif (report.findings, report.skipped, report.failures) != (
            reference.findings,
            reference.skipped,
            reference.failures,
        ):
            raise AssertionError(f"n_jobs={n_jobs} report differs from serial")
        label = "serial" if n_jobs == 1 else f"n_jobs={n_jobs}"
        runs[label] = {
            "seconds": round(seconds, 4),
            "pairs_per_second": round(n_pairs / seconds, 3),
        }
        if n_jobs != 1 and serial_seconds is not None:
            runs[label]["speedup_vs_serial"] = round(serial_seconds / seconds, 3)
    return {
        "series": n_series,
        "series_length": length,
        "pairs": n_pairs,
        "findings": len(reference.findings) if reference is not None else 0,
        "runs": runs,
    }


def bench_scoring(length: int, config: TycosConfig, repeats: int, seed: int) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=length))
    x = base + rng.normal(scale=0.1, size=length)
    y = np.roll(base, 7) + rng.normal(scale=0.1, size=length)
    out: Dict[str, Any] = {"series_length": length}
    results: Dict[bool, Any] = {}
    timings: Dict[bool, float] = {}
    for batched in (False, True):
        engine = Tycos(config, batched_scoring=batched)
        box: List[Any] = []

        def run() -> None:
            box.append(engine.search(x, y))

        timings[batched] = best_of(repeats, run)
        results[batched] = box[-1]
    if [r.window for r in results[False].windows] != [r.window for r in results[True].windows]:
        raise AssertionError("batched search returned different windows than scalar")
    for batched in (False, True):
        stats = results[batched].stats
        seconds = timings[batched]
        key = "batched" if batched else "scalar"
        out[key] = {
            "seconds": round(seconds, 4),
            "windows_evaluated": stats.windows_evaluated,
            "windows_per_second": round(stats.windows_evaluated / seconds, 1),
        }
    out["batched"]["speedup_vs_scalar"] = round(timings[False] / timings[True], 3)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes and 2 workers; a CI health check, not a baseline")
    parser.add_argument("--output", default=None,
                        help="write the JSON document here (default: stdout only)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of (default: 3, smoke: 1)")
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    if repeats < 1:
        parser.error(f"--repeats must be >= 1, got {repeats}")
    if args.smoke:
        n_series, length, jobs = 4, 240, [1, 2]
        scoring_length = 400
        config = TycosConfig(sigma=0.3, s_min=8, s_max=40, td_max=8, jitter=1e-6, seed=args.seed)
    else:
        n_series, length, jobs = 8, 600, [1, 2, 4]
        scoring_length = 1600
        config = TycosConfig(sigma=0.3, s_min=8, s_max=80, td_max=12, jitter=1e-6, seed=args.seed)

    document = {
        "schema": SCHEMA,
        "mode": "smoke" if args.smoke else "full",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "sigma": config.sigma,
            "s_min": config.s_min,
            "s_max": config.s_max,
            "td_max": config.td_max,
            "seed": args.seed,
            "repeats": repeats,
        },
        "pairwise": bench_pairwise(n_series, length, config, jobs, repeats, args.seed),
        "scoring": bench_scoring(scoring_length, config, repeats, args.seed + 1),
        "notes": (
            "Timings are best-of-repeats wall clock.  Multi-worker speedup "
            "scales with host cores (see host.cpu_count); on a single-core "
            "host the n_jobs>1 rows measure process-pool overhead.  The "
            "scoring speedup is core-count independent: it comes from the "
            "batched neighborhood kernel, which shares one distance "
            "workspace across a delta-ring instead of rebuilding per window."
        ),
    }

    text = json.dumps(document, indent=2, sort_keys=False)
    print(text)
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

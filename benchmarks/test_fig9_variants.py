"""Bench: regenerate Fig. 9 (runtime of the four TYCOS variants).

Prints per-dataset runtimes and asserts the paper's ordering: the noise
theory accelerates the search everywhere, and the fully optimized
TYCOS_LMN clearly beats plain TYCOS_L.
"""

import numpy as np

from repro.experiments.fig9 import run_fig9


def test_fig9_variant_runtimes(benchmark, scale):
    n = 1400 if scale == "full" else 800
    datasets = (
        ("synthetic1", "synthetic2", "synthetic3", "energy", "smartcity")
        if scale == "full"
        else ("synthetic1", "energy", "smartcity")
    )
    result = benchmark.pedantic(
        run_fig9, kwargs=dict(n=n, seed=0, datasets=datasets), iterations=1, rounds=1
    )
    print()
    print(result.to_text())

    speedups = []
    for ds in datasets:
        times = result.runtimes[ds]
        # Noise pruning speeds up the plain search on every dataset.
        assert times["TYCOS_LN"] < times["TYCOS_L"], ds
        # ... and the evaluation counts tell the same story as wall clock.
        assert result.evaluations[ds]["TYCOS_LN"] < result.evaluations[ds]["TYCOS_L"]
        speedups.append(result.speedup(ds, "TYCOS_LMN"))
    # The fully optimized variant beats the plain one clearly overall
    # (geometric mean across datasets -- single-dataset wall clocks are
    # noisy at quick scale).
    geo_mean = float(np.exp(np.mean(np.log(speedups))))
    assert geo_mean > 1.5, (speedups, geo_mean)

"""Bench: regenerate Table 3 (correlations extracted from real-world sims).

Prints, per coupling, the window counts and delay ranges of TYCOS vs
AMIC, and asserts the paper's shape: TYCOS extracts delayed windows for
every coupling; AMIC misses the purely delayed ones.
"""

from repro.experiments.table3 import run_table3


def test_table3_extracted_correlations(benchmark, scale):
    target = 1500 if scale == "full" else 800
    result = benchmark.pedantic(
        run_table3, kwargs=dict(target_samples=target, seed=0), iterations=1, rounds=1
    )
    print()
    print(result.to_text())

    # TYCOS extracts windows for every coupling.
    for row in result.rows:
        assert row.tycos_count > 0, row.label

    # The observed delay range must reach into the planted lag band for
    # the strongly-identifiable couplings.  (C2's microwave channel is
    # driven by two planted causes -- kitchen sessions and the morning
    # light chain -- so its per-window delays are multi-modal and the range
    # check is not robust at reduced scale.)
    for label in ("C1", "C3", "C7"):
        row = result.row(label)
        lo, hi = row.tycos_delay_minutes
        assert hi >= row.lag_minutes[0], (label, row.tycos_delay_minutes, row.lag_minutes)

    # AMIC misses the purely delayed couplings (source pulse ends before
    # the target's starts): C3 (washer->dryer) and C6 (children->living).
    assert result.row("C3").amic_count == 0
    assert result.row("C6").amic_count == 0
    # And in aggregate TYCOS extracts far more than AMIC, which only ever
    # sees the zero-delay overlaps.
    tycos_total = sum(r.tycos_count for r in result.rows)
    amic_total = sum(r.amic_count for r in result.rows)
    assert tycos_total > 2 * amic_total

"""Bench: regenerate Fig. 11 (noise threshold sweep: error & runtime gain)."""

import numpy as np

from repro.experiments.fig11 import run_fig11


def test_fig11_noise_threshold_sweep(benchmark, scale):
    n = 700 if scale == "full" else 450
    ratios = (0.05, 0.15, 0.25, 0.4, 0.6, 0.8)
    result = benchmark.pedantic(
        run_fig11,
        kwargs=dict(ratios=ratios, n=n, datasets=("synthetic1", "smartcity"), seed=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.to_text())

    for ds in ("synthetic1", "smartcity"):
        errors = result.error_rate[ds]
        gains = result.runtime_gain[ds]
        # Larger epsilon/sigma prunes more: the runtime gain trends up
        # (compare the aggressive half against the conservative half).
        assert np.mean(gains[3:]) >= np.mean(gains[:3]) - 0.1, (ds, gains)
        # ... and cannot *reduce* the error (weak monotonicity on average).
        assert np.mean(errors[3:]) >= np.mean(errors[:3]) - 0.05, (ds, errors)
        # At the paper's operating point (0.25) the error stays moderate.
        assert errors[2] <= 0.5, (ds, errors)

"""Top-K search: correlation discovery without picking a threshold.

Section 6.3.2's alternative to a fixed sigma: keep the K best windows and
let the acceptance bar tighten itself.  Useful for exploration when
nothing is known about the data's correlation strength.

Run with::

    python examples/topk_search.py
"""

import numpy as np

from repro import Tycos, TycosConfig
from repro.data.composer import standard_pair

rng = np.random.default_rng(3)
pair = standard_pair(
    rng,
    segment_length=100,
    delay=12,
    names=["independent", "linear", "quadratic", "sine"],
)

config = TycosConfig(
    sigma=0.05,          # nearly ignored: top-K drives acceptance
    s_min=20,
    s_max=160,
    td_max=16,
    init_delay_step=1,
    seed=0,
)

engine = Tycos(config)
result = engine.search_topk(pair.x, pair.y, k_top=5)

print(f"Top-{len(result.windows)} windows (strongest first):\n")
print(f"{'rank':>4s} {'window':>18s} {'delay':>6s} {'nmi':>6s}  planted relation")
for rank, r in enumerate(result.windows, 1):
    w = r.window
    inside = next(
        (p.name for p in pair.planted if p.start <= w.start <= p.end), "-"
    )
    print(f"{rank:4d}   [{w.start:5d}, {w.end:5d}] {w.delay:6d} {r.nmi:6.2f}  {inside}")

print("\nGround truth: relations planted at delay 12 --",
      ", ".join(f"{p.name}@[{p.start},{p.end}]" for p in pair.planted if p.dependent))

"""Energy-domain example: device-to-device lagged correlations.

Simulates a week of residential plug loads (the stand-in for the NIST
Net-Zero dataset the paper uses) and searches three device pairs for time
delay correlations, reproducing the style of the paper's Table-3 energy
findings (C1-C6): kitchen activity precedes the dish washer by hours, the
clothes washer precedes the dryer by tens of minutes, and so on.

Run with::

    python examples/energy_analysis.py
"""

import numpy as np

from repro import Tycos, TycosConfig
from repro.data.energy import EXPECTED_COUPLINGS, simulate_energy

PAIRS = [
    ("clothes_washer", "dryer", 4),        # lag 10-30 min
    ("kitchen", "dish_washer", 8),         # lag 0-4 h
    ("bathroom_light", "kitchen_light", 1),  # lag 1-5 min
]

for source, target, resolution in PAIRS:
    days = max(1, int(np.ceil(900 * resolution / (24 * 60))))
    data = simulate_energy(
        days=days, seed=0, minutes_per_sample=resolution, event_density=2.0
    )
    x, y = data.pair(source, target)

    coupling = next(c for c in EXPECTED_COUPLINGS if (c.source, c.target) == (source, target))
    lag_hi = max(1, int(np.ceil(coupling.lag_minutes[1] / resolution)))

    config = TycosConfig(
        sigma=0.25,
        s_min=24,
        s_max=min(240, data.n // 2),
        td_max=lag_hi + 6,
        jitter=1e-3,                  # de-tie the near-zero standby readings
        significance_permutations=10,
        seed=0,
    )
    result = Tycos(config).search(x, y)

    print(f"=== {source} -> {target} "
          f"(planted lag {coupling.lag_minutes[0]}-{coupling.lag_minutes[1]} min, "
          f"{resolution}-min resolution, {data.n} samples)")
    if not result.windows:
        print("  no correlated windows found")
    for r in result.windows:
        w = r.window
        print(f"  window [{w.start:5d}, {w.end:5d}]  "
              f"delay {w.delay * resolution:+5d} min  nmi {r.nmi:.2f}")
    delays = result.delay_range()
    if delays:
        print(f"  -> observed delay range: "
              f"[{delays[0] * resolution}, {delays[1] * resolution}] min\n")
    else:
        print()

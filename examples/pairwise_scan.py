"""Dataset-wide scan: which of many sensors are correlated, and when?

The paper's energy study runs TYCOS over every pair of 72 plugs.  This
example reproduces that workflow on the simulated household: all device
pairs are scanned (a cheap MI pre-filter skips obviously unrelated ones)
and the correlated pairs are ranked.

Run with::

    python examples/pairwise_scan.py
"""

from repro import TycosConfig
from repro.analysis import scan_pairs
from repro.data.energy import simulate_energy

data = simulate_energy(days=2, seed=0, minutes_per_sample=4, event_density=2.0)

# A subset of devices keeps the demo quick; drop the selection to scan all.
devices = ["clothes_washer", "dryer", "bathroom_light", "kitchen_light", "children_room_light"]
series = {name: data.series[name] for name in devices}

config = TycosConfig(
    sigma=0.3,
    s_min=20,
    s_max=180,
    td_max=10,
    jitter=1e-3,
    significance_permutations=10,
    seed=0,
)

# A conservative pre-filter: sparse event data needs a low bar, because
# the probe windows may land between events.  On a multi-core machine,
# add n_jobs=-1 to fan the pairs over worker processes -- the report is
# byte-identical for every worker count.
report = scan_pairs(series, config, prefilter_threshold=0.05)
print(report.to_text())
print()
resolution = data.minutes_per_sample
for finding in report.correlated():
    if finding.delay_range is not None:
        lo, hi = finding.delay_range
        print(f"{finding.source} leads {finding.target} by "
              f"{lo * resolution} to {hi * resolution} minutes")

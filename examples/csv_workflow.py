"""File-based workflow: from a CSV on disk to correlated windows.

Writes a small CSV (two coupled columns plus noise), then uses the same
code path as the ``tycos-search`` command-line tool to load and search it.
This is the shortest route from "I have sensor exports" to "these columns
correlate at this lag".

Run with::

    python examples/csv_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Tycos, TycosConfig
from repro.analysis import read_csv_series

# ----------------------------------------------------------------------
# 1. Fabricate a sensor export: temperature drives consumption 4 steps
#    later through a saturating (non-linear) response.
rng = np.random.default_rng(0)
n = 500
temperature = rng.uniform(10, 30, n)
consumption = rng.uniform(0, 1, n)
event = rng.uniform(10, 30, 140)
temperature[200:340] = event
consumption[204:344] = np.tanh((event - 20.0) / 4.0) + 0.02 * rng.normal(size=140)

csv_path = Path(tempfile.mkdtemp()) / "sensors.csv"
with csv_path.open("w") as handle:
    handle.write("temperature,consumption,humidity\n")
    humidity = rng.uniform(30, 70, n)
    for row in zip(temperature, consumption, humidity):
        handle.write(",".join(f"{v:.4f}" for v in row) + "\n")
print(f"wrote {csv_path}")

# ----------------------------------------------------------------------
# 2. Load and search -- identical to:
#    tycos-search sensors.csv --x temperature --y consumption ...
series = read_csv_series(csv_path, columns=["temperature", "consumption"])
config = TycosConfig(
    sigma=0.4,
    s_min=20,
    s_max=200,
    td_max=8,
    init_delay_step=1,
    significance_permutations=15,
    seed=0,
)
result = Tycos(config).search(series["temperature"], series["consumption"])

print(f"\n{len(result.windows)} correlated windows "
      f"(ground truth: [200, 343] at delay +4):")
for r in result.windows:
    w = r.window
    print(f"  [{w.start:3d}, {w.end:3d}]  delay {w.delay:+d}  nmi {r.nmi:.2f}")

"""Smart-city example: weather-to-incident lagged correlations.

Simulates a month of city data (stand-in for NYC Open Data) and asks when
precipitation and wind correlate with collision counts -- the paper's
Table-3 findings C7-C10, including the observation that rain affects
pedestrians more than motorists while wind does the opposite.

Run with::

    python examples/smart_city_analysis.py
"""

from repro import Tycos, TycosConfig
from repro.baselines.amic import amic_search
from repro.data.smartcity import simulate_smartcity

data = simulate_smartcity(days=4, seed=0)
resolution = data.minutes_per_sample

config = TycosConfig(
    sigma=0.25,
    s_min=24,
    s_max=288,       # up to one day
    td_max=30,       # up to 2.5 hours of lag
    jitter=1e-3,     # incident counts are integers; de-tie for the KSG kNN
    significance_permutations=10,
    seed=0,
)

PAIRS = [
    ("precipitation", "collisions"),
    ("precipitation", "pedestrian_injured"),
    ("wind_speed", "motorist_killed"),
]

for source, target in PAIRS:
    x, y = data.pair(source, target)
    tycos_result = Tycos(config).search(x, y)
    amic_result = amic_search(x, y, config.scaled(td_max=0))

    print(f"=== {source} vs {target}")
    print(f"  TYCOS: {len(tycos_result.windows)} windows")
    for r in tycos_result.windows:
        w = r.window
        print(f"    [{w.start:4d}, {w.end:4d}]  delay {w.delay * resolution:+5d} min"
              f"  nmi {r.nmi:.2f}")
    print(f"  AMIC (no delay dimension): {len(amic_result.windows)} windows")
    delays = tycos_result.delay_range()
    if delays:
        print(f"  -> weather leads incidents by up to {delays[1] * resolution} min\n")
    else:
        print()

"""Relation gallery: why mutual information beats Pearson correlation.

Generates each of the paper's nine Table-1 relation types and scores it
with the Pearson coefficient, raw KSG MI and normalized MI, side by side.
The non-linear / non-functional rows are exactly where PCC collapses to
~0 while MI stays decisive -- the paper's core motivation.

Run with::

    python examples/relation_gallery.py
"""

import numpy as np

from repro.baselines.pearson import pcc
from repro.data.relations import RELATIONS, generate_relation
from repro.mi.ksg import ksg_mi
from repro.mi.normalized import normalized_mi

rng = np.random.default_rng(0)
m = 600

print(f"{'relation':<12s} {'kind':<28s} {'|PCC|':>6s} {'MI':>7s} {'nMI':>6s}")
print("-" * 64)
for name, spec in RELATIONS.items():
    x, y = generate_relation(name, m, rng)
    # Rank-transform both margins: MI is invariant under monotone maps and
    # the exponential relation spans 40 decades otherwise.
    rx = np.argsort(np.argsort(x)).astype(float)
    ry = np.argsort(np.argsort(y)).astype(float)

    kind = []
    if not spec.dependent:
        kind.append("independent")
    else:
        kind.append("linear" if spec.linear else "non-linear")
        kind.append("monotone" if spec.monotonic else "non-monotone")
        if not spec.functional:
            kind.append("non-func")

    print(
        f"{name:<12s} {'/'.join(kind):<28s} "
        f"{abs(pcc(rx, ry)):6.2f} {ksg_mi(rx, ry):7.3f} {normalized_mi(rx, ry):6.2f}"
    )

print(
    "\nReading: PCC sees only the linear/monotone rows; MI separates every"
    "\ndependent relation from the independent placebo."
)

"""Spatial extension: track a weather front across a sensor network.

A front sweeps eastward over four stations.  TYCOS finds the pairwise
lagged correlations; regressing the delays on the station geometry then
recovers the front's velocity -- the paper's "correlations across spatial
dimensions" future work, end to end.

Run with::

    python examples/spatial_front.py
"""

from repro import TycosConfig
from repro.data.spatial import simulate_moving_front
from repro.extensions import estimate_propagation, spatial_scan

stations = {
    "west": (0.0, 0.0),
    "mid": (10.0, 0.0),
    "east": (20.0, 0.0),
    "north": (10.0, 10.0),
}
truth_velocity = (0.5, 0.0)  # distance units per sample, heading east

data = simulate_moving_front(
    stations, n=800, events=3, velocity=truth_velocity, seed=0
)

config = TycosConfig(
    sigma=0.3,
    s_min=24,
    s_max=200,
    td_max=50,
    init_delay_step=4,
    significance_permutations=10,
    seed=0,
)

report = spatial_scan(data, config)
print(report.to_text())

print("\nPlanted pairwise lags (samples):")
for f in report.correlated():
    print(f"  {f.source} -> {f.target}: expected "
          f"{data.expected_delay(f.source, f.target):+.0f}, "
          f"measured {f.median_delay:+.0f}")

velocity = estimate_propagation(report)
print(f"\nRecovered front velocity: ({velocity[0]:.2f}, {velocity[1]:.2f}) "
      f"-- planted: {truth_velocity}")

"""Direction analysis and live monitoring -- the post-search workflow.

1. Search a pair where X demonstrably drives Y.
2. Ask, per extracted window, which side leads (delay sign + transfer
   entropy) -- the paper's "infer causal effects" follow-up.
3. Re-play the same pair as a live stream and watch the online monitor
   raise a single event when the correlation episode starts.

Run with::

    python examples/causality_and_streaming.py
"""

import numpy as np

from repro import Tycos, TycosConfig
from repro.extensions import StreamingMonitor, analyze_directions

# ----------------------------------------------------------------------
# Data: y responds to x's past with lag 4 inside one long episode.
rng = np.random.default_rng(0)
n = 700
x = rng.normal(size=n)
y = 0.4 * rng.normal(size=n)
for t in range(204, 500):
    y[t] = 0.9 * x[t - 4] + 0.3 * rng.normal()

# ----------------------------------------------------------------------
# 1-2. Search, then judge direction per window.
config = TycosConfig(
    sigma=0.25, s_min=48, s_max=300, td_max=8, init_delay_step=1, seed=0
)
result = Tycos(config).search(x, y)
report = analyze_directions(x, y, result)
print(report.to_text())

# ----------------------------------------------------------------------
# 3. The same data as a live feed.
monitor = StreamingMonitor(scales=(64,), delays=(0, 4), sigma=0.35)
for xv, yv in zip(x, y):
    for event in monitor.push(xv, yv):
        print(f"\n[stream] correlation detected at t={event.time} "
              f"(scale {event.scale}, delay {event.delay}, nmi {event.nmi:.2f})")
print(f"[stream] total events: {len(monitor.events)} "
      f"(episode truly starts at t=204)")

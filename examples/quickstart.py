"""Quickstart: find time delay correlations in a pair of time series.

Builds a noisy pair with one planted non-linear relation at a known lag,
runs the full TYCOS search (TYCOS_LMN), and prints the extracted windows.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import Tycos, TycosConfig

# ----------------------------------------------------------------------
# 1. Data: two noise series; x[400:520] drives y 15 steps later through a
#    non-linear response.  A linear-correlation scan would see nothing.
rng = np.random.default_rng(0)
n = 1000
x = rng.uniform(0.0, 1.0, n)
y = rng.uniform(0.0, 1.0, n)

driver = rng.uniform(0.0, 1.0, 120)
x[400:520] = driver
y[415:535] = np.sin(6.0 * driver) / 2.0 + 0.5 + 0.02 * rng.normal(size=120)

# ----------------------------------------------------------------------
# 2. Configure the search.  sigma is a [0, 1] normalized-MI threshold;
#    window sizes and the maximum delay bound the search space the way
#    domain knowledge would (paper Table 2).
config = TycosConfig(
    sigma=0.4,          # correlation threshold (normalized MI)
    s_min=20,           # smallest window worth reporting
    s_max=200,          # longest plausible correlation
    td_max=25,          # largest plausible lag
    init_delay_step=1,  # probe every delay when seeding (exact-lag data)
    significance_permutations=15,  # permutation test against false positives
    seed=0,
)

# ----------------------------------------------------------------------
# 3. Search.  Tycos(config) is TYCOS_LMN: LAHC + noise pruning +
#    incremental MI; see repro.core.tycos for the other variants.
engine = Tycos(config)
result = engine.search(x, y)

print(f"{engine.name} evaluated {result.stats.windows_evaluated} windows "
      f"in {result.stats.runtime_seconds:.2f}s "
      f"({result.stats.noise_prunes} noise prunes)\n")
print(f"{'window':>22s} {'delay':>6s} {'nmi':>6s} {'mi (nats)':>10s}")
for r in result.windows:
    w = r.window
    print(f"  [{w.start:5d}, {w.end:5d}] {w.delay:6d} {r.nmi:6.2f} {r.mi:10.3f}")

best = max(result.windows, key=lambda r: r.nmi)
print(f"\nStrongest correlation: {best.window} -- the planted relation "
      f"lives at [400, 519] with delay 15.")

# ----------------------------------------------------------------------
# 4. Inspect the finding: MI vs Pearson plus an ASCII scatter of the
#    dependence shape (high nmi + low |r| = non-linear relation).
from repro.analysis import inspect_window

print()
print(inspect_window(x, y, best.window).to_text())

"""MI landscape: what the search climbs (paper Figs. 4 and 6).

Computes the normalized MI of a sliding window across a composed pair and
prints an ASCII profile: the peaks are exactly the planted relations the
hill climbing converges to (Fig. 4).  A second pass shows the Fig.-6
effect behind the noise theory: dropping a noise prefix from a window
*raises* its MI.

Run with::

    python examples/mi_landscape.py
"""

import numpy as np

from repro.data.composer import standard_pair
from repro.mi.normalized import normalized_mi

rng = np.random.default_rng(1)
pair = standard_pair(rng, segment_length=120, delay=0, names=["linear", "sine", "circle"])

# ----------------------------------------------------------------------
# Fig. 4: the MI value fluctuation across sliding windows.
window = 60
step = 15
print("Sliding-window normalized MI (Fig. 4 style):\n")
for start in range(0, pair.n - window, step):
    value = normalized_mi(pair.x[start : start + window], pair.y[start : start + window])
    bar = "#" * int(round(40 * min(value, 1.0)))
    marker = ""
    for planted in pair.planted:
        if planted.start <= start <= planted.end:
            marker = f"  <- {planted.name}"
            break
    print(f"  t={start:4d} {value:5.2f} |{bar:<40s}|{marker}")

# ----------------------------------------------------------------------
# Fig. 6: excluding a noise prefix increases the MI of what remains.
planted = pair.planted[0]
print("\nEffect of a noise prefix (Fig. 6 style):")
print(f"planted relation at [{planted.start}, {planted.end}]")
for prefix in (60, 40, 20, 0):
    s = planted.start - prefix
    value = normalized_mi(pair.x[s : planted.end + 1], pair.y[s : planted.end + 1])
    print(f"  window [{s:4d}, {planted.end}] ({prefix:3d} noise samples included): "
          f"nMI = {value:.3f}")
print("\nThe fewer noise samples a window drags along, the higher its MI --")
print("the monotonicity Theorem 6.1 turns into a pruning rule.")

"""Threshold tuning: let the data pick sigma.

Given a pair you know nothing about, sweep sigma, look at how the window
count collapses, and take the knee -- the point past which raising the bar
no longer removes windows in bulk (the weak tail is gone, the survivors
are the stable correlations).

Run with::

    python examples/threshold_tuning.py
"""

import numpy as np

from repro import Tycos, TycosConfig
from repro.analysis import sigma_sweep, suggest_sigma

# A pair with two genuine correlations of different strength plus noise.
rng = np.random.default_rng(0)
n = 700
x = rng.uniform(0, 1, n)
y = rng.uniform(0, 1, n)
strong = rng.uniform(0, 1, 120)
x[100:220] = strong
y[103:223] = strong + 0.01 * rng.normal(size=120)       # near-deterministic
weak = rng.uniform(0, 1, 120)
x[400:520] = weak
y[403:523] = np.sin(5 * weak) / 2 + 0.5 + 0.25 * rng.normal(size=120)  # noisy

base = TycosConfig(
    sigma=0.3, s_min=20, s_max=200, td_max=5, init_delay_step=1, seed=0
)

sweep = sigma_sweep(x, y, base, sigmas=(0.15, 0.25, 0.35, 0.45, 0.6, 0.75))
print(sweep.to_text())

sigma, _ = suggest_sigma(sweep)
print(f"\nsuggested sigma: {sigma:.2f}")

result = Tycos(base.scaled(sigma=sigma, significance_permutations=15)).search(x, y)
print(f"\nfinal search at sigma={sigma:.2f}: {len(result.windows)} windows")
for r in result.windows:
    w = r.window
    region = "strong" if w.start < 300 else ("weak" if w.start < 600 else "noise")
    print(f"  [{w.start:3d}, {w.end:3d}] delay {w.delay:+d} nmi {r.nmi:.2f}  ({region} region)")

"""Developer tooling for the TYCOS reproduction (not shipped with the package)."""

"""Baseline (suppression-file) support for tycoslint.

A baseline is a checked-in list of accepted findings so that enabling a
new rule never blocks CI on pre-existing, reviewed code.  Each non-blank,
non-comment line is::

    TYxxx path/to/file.py        # optional trailing comment

A finding matches an entry when the codes are equal and the entry's path
is the finding's path or a trailing suffix of it (so the file works from
any checkout root).  One entry suppresses any number of findings of that
code in that file -- a baseline accepts a *known debt*, not a specific
line number, which would churn on every unrelated edit.

Entries that match nothing are reported as *stale* so the file shrinks
as debt is paid down; staleness warns but does not fail the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

from tools.tycoslint.engine import Violation

__all__ = [
    "BaselineEntry",
    "load_baseline",
    "apply_baseline",
    "format_baseline",
    "DEFAULT_BASELINE",
]

#: Default baseline location, applied automatically when it exists.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.txt"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: a rule code plus a path (suffix-matched)."""

    code: str
    path: str

    def matches(self, violation: Violation) -> bool:
        if violation.code != self.code:
            return False
        v_path = Path(violation.path).as_posix()
        return v_path == self.path or v_path.endswith("/" + self.path)


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file; malformed lines raise ``ValueError``."""
    entries: List[BaselineEntry] = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{lineno}: expected 'CODE path', got {raw.strip()!r}"
            )
        code, entry_path = parts
        entries.append(BaselineEntry(code=code, path=Path(entry_path).as_posix()))
    return entries


def apply_baseline(
    violations: Sequence[Violation], entries: Iterable[BaselineEntry]
) -> Tuple[List[Violation], int, List[BaselineEntry]]:
    """Filter baselined findings.

    Returns:
        ``(kept, suppressed_count, stale_entries)`` where ``stale_entries``
        are baseline lines that matched no finding this run.
    """
    entries = list(entries)
    used = [False] * len(entries)
    kept: List[Violation] = []
    suppressed = 0
    for violation in violations:
        matched = False
        for index, entry in enumerate(entries):
            if entry.matches(violation):
                used[index] = True
                matched = True
        if matched:
            suppressed += 1
        else:
            kept.append(violation)
    stale = [entry for entry, was_used in zip(entries, used) if not was_used]
    return kept, suppressed, stale


def format_baseline(violations: Sequence[Violation]) -> str:
    """Render current findings as baseline-file content (for --write-baseline)."""
    lines = [
        "# tycoslint baseline: accepted findings, one 'CODE path' per line.",
        "# Regenerate with: python -m tools.tycoslint --write-baseline <paths>",
    ]
    seen = set()
    for violation in sorted(violations, key=lambda v: (v.code, v.path)):
        entry = f"{violation.code} {Path(violation.path).as_posix()}"
        if entry not in seen:
            seen.add(entry)
            lines.append(entry)
    return "\n".join(lines) + "\n"

"""Registries the whole-program rule families are checked against.

These sets are the *declared* architecture: which modules are allowed to
own process-wide mutable state, which may touch multiprocessing
primitives, which build report payloads, and which fast paths owe the
bit-exactness gate a test.  Rules TY101-TY121 compare the code against
these declarations, so growing the codebase is a two-step move: write
the module, then register it here (reviewed in the same diff).

Registering a module is a claim with obligations:

* ``CACHE_MODULES`` -- the module's state must be fork-safe: either
  append-only memos whose entries are identical however they are grown
  (``repro.mi.digamma``; the ``lru_cache`` pure-function memos), or
  per-process registries that pool initializers repopulate from scratch
  in every worker (``repro.analysis.parallel``).
* ``PARALLEL_MODULES`` -- the module owns pool/shared-memory lifecycles
  end to end (create, attach, unlink), so fork-safety review has one
  place to look.
* ``REPORT_MODULES`` -- the module's output feeds serialized reports and
  must stay free of wall-clock values (TY114) so byte-diffing two runs
  means something.
* ``FAST_PATH_GATES`` -- the module implements an accelerated path whose
  results are claimed bit-identical to a reference; TY121 requires a
  test module that imports it and asserts equality.  The mapped string
  names the reference the gate compares against (documentation, shown in
  the violation message).
* ``BACKEND_MODULES`` -- the modules allowed to import ``numba`` and to
  host compiled-kernel internals (TY115).  Everything else selects an
  engine through ``repro.mi.backends.dispatch.get_kernels`` only, so the
  optional dependency stays optional and the bit-exactness gate stays
  the single doorway to compiled code.
* ``STORE_MODULES`` -- the modules allowed to open memory maps and to
  spell the series-store file names (TY116).  Mmap lifetimes are easy to
  leak and the store manifest is a format contract, so both get a single
  audited owner; everything else attaches through
  ``repro.analysis.store.SeriesStore``.
* ``PLANNER_MODULES`` -- the modules allowed to construct
  :class:`~repro.analysis.planner.SearchPlan` stages directly (TY117).
  A plan is a validated composition contract -- the grammar, the
  byte-identity guarantees, and the provenance fingerprint all live in
  one place -- so everything else obtains plans through the planner's
  builder functions (``plain_plan`` / ``segmented_plan`` /
  ``multiscale_plan`` / ``composed_plan`` / ``plan_from_config`` /
  ``parse_plan_spec`` / ``auto_plan``).  Ad-hoc stage construction
  outside the planner is exactly the side-channel orchestration the
  planner refactor retired.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = [
    "CACHE_MODULES",
    "PARALLEL_MODULES",
    "REPORT_MODULES",
    "FAST_PATH_GATES",
    "POOL_SPAWNERS",
    "BACKEND_MODULES",
    "STORE_MODULES",
    "STORE_FILENAMES",
    "PLANNER_MODULES",
    "PLAN_CONSTRUCTORS",
]

#: Modules allowed to own (and mutate) process-wide mutable state.
CACHE_MODULES: FrozenSet[str] = frozenset(
    {
        # DigammaTable._SHARED: append-only; every entry is the same scipy
        # evaluation a direct call would produce, so a worker re-growing
        # its copy after fork computes identical values.
        "repro.mi.digamma",
        # lru_cache'd default_bins: pure-function memo, fork-safe.
        "repro.mi.entropy",
        # lru_cache'd _shell/_is_blocked direction tables: pure-function
        # memos, fork-safe.
        "repro.core.neighborhood",
        # _WORKER_STATE: the per-worker attachment registry, repopulated
        # from scratch by every pool initializer.
        "repro.analysis.parallel",
        # _KERNEL_CACHE / _NUMBA_MODULE: append-only memos of the resolved
        # kernel set per (backend, precision) and of the numba import
        # probe; every entry is deterministic from the installed
        # environment, so a worker re-resolving after fork gets an
        # identical answer.
        "repro.mi.backends.dispatch",
        # _COMPILED: the one-time njit compilation memo; recompiling in a
        # worker yields the same machine code for the same kernels.
        "repro.mi.backends.numba_backend",
    }
)

#: Modules allowed to use multiprocessing / shared-memory primitives.
PARALLEL_MODULES: FrozenSet[str] = frozenset({"repro.analysis.parallel"})

#: Modules whose output feeds serialized report payloads.
REPORT_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.analysis.serialization",
        "repro.analysis.csvio",
        "repro.analysis.cascade",
        "repro.experiments.reporting",
        "repro.experiments.summary",
    }
)

#: Fast-path module -> the reference its bit-exactness gate compares
#: against.  TY121 requires a test module importing the fast path and
#: asserting equality; run the linter over ``src tests`` together so the
#: gate can see both sides.
FAST_PATH_GATES: Dict[str, str] = {
    "repro.mi.digamma": "direct scipy.special.digamma evaluation",
    "repro.mi.neighbors": "per-window np.sort / scalar KSG geometry",
    "repro.mi.incremental": "full KSG re-estimation per window",
    "repro.core.thresholds": "scalar per-window scoring path",
    "repro.core.pyramid": "exact full-resolution coordinate mapping",
    "repro.analysis.parallel": "the serial pairwise scan",
    "repro.analysis.segmented": "the sequential reference stitcher",
    "repro.analysis.multiscale": "the exhaustive full-resolution search",
    "repro.mi.backends.dispatch": "the legacy numpy scoring paths",
    "repro.mi.backends.numpy_backend": "interpreted canonical kernels and legacy selection",
    "repro.baselines.pearson": "the per-delay sliding_pcc loop",
    "repro.analysis.cascade": "the unscreened scan_pairs reference",
    "repro.analysis.screen_state": "the per-pair fft_screen_score reference",
    "repro.analysis.planner": "the pre-planner single-strategy entry points",
}

#: Callables whose invocation marks "a pool has been spawned" for TY103.
POOL_SPAWNERS: FrozenSet[str] = frozenset(
    {"ProcessPoolExecutor", "Pool", "pooled_map", "scan_pairs_parallel"}
)

#: Modules allowed to import ``numba`` or compiled-kernel internals
#: (``repro.mi.backends.numba_backend`` / ``._kernels``).  TY115 confines
#: the optional dependency here; everything else obtains kernels through
#: ``repro.mi.backends.dispatch.get_kernels``.
BACKEND_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.mi.backends",
        "repro.mi.backends.dispatch",
        "repro.mi.backends.numba_backend",
        "repro.mi.backends.numpy_backend",
        "repro.mi.backends._kernels",
    }
)

#: Modules allowed to open memory maps and to spell the store file names
#: (TY116).  Everything else attaches through
#: ``repro.analysis.store.SeriesStore``.
STORE_MODULES: FrozenSet[str] = frozenset({"repro.analysis.store"})

#: File names of the on-disk series store and its derived screen-state
#: cache (format contract).  Spelling one of these outside
#: ``STORE_MODULES`` means a second module is interpreting the store
#: layout; route it through ``SeriesStore``.
STORE_FILENAMES: FrozenSet[str] = frozenset(
    {"manifest.json", "series.bin", "screen.json", "screen.bin"}
)

#: Modules allowed to construct search-plan stages directly (TY117).
#: Everything else builds plans through the planner's builder functions,
#: so strategy composition stays inside the one module whose grammar,
#: determinism guarantees, and provenance fingerprints are audited.
PLANNER_MODULES: FrozenSet[str] = frozenset({"repro.analysis.planner"})

#: The plan/stage constructors TY117 confines to ``PLANNER_MODULES``.
#: Calling one of these outside the planner is ad-hoc strategy dispatch;
#: go through plain_plan / segmented_plan / multiscale_plan /
#: composed_plan / plan_from_config / parse_plan_spec / auto_plan.
PLAN_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "SearchPlan",
        "CoarsenStage",
        "SegmentStage",
        "ScanStage",
        "StitchStage",
        "RescoreStage",
    }
)

"""Whole-program tycoslint rules (TY101 - TY121).

These rules run against the :class:`~tools.tycoslint.project.ProjectModel`
built by pass 1, so they can see relationships no single AST contains:

* **TY100s fork-safety** -- process-wide mutable state is only safe to
  own (and mutate) in the modules registered in
  :data:`~tools.tycoslint.registry.CACHE_MODULES`; multiprocessing and
  shared-memory primitives only belong to
  :data:`~tools.tycoslint.registry.PARALLEL_MODULES`; and nothing may
  write module-level state after a pool has been spawned in the same
  function, because the workers already forked a snapshot of it.
* **TY110s determinism** -- iteration order of a ``set`` of strings
  depends on ``PYTHONHASHSEED``; ``argsort`` tie order depends on the
  sort kind; environment reads at import time freeze configuration
  before tests/CLIs can set it; wall-clock calls inside report-building
  modules make two byte-identical runs serialize differently.
* **TY115 backend confinement** -- ``numba`` imports and compiled-kernel
  internals only belong to the modules registered in
  :data:`~tools.tycoslint.registry.BACKEND_MODULES`; everything else
  selects an engine through ``repro.mi.backends.dispatch.get_kernels``,
  which keeps the optional dependency optional and the bit-exactness
  gate the single doorway to compiled code.
* **TY120s gate coverage** -- every module registered as a fast path in
  :data:`~tools.tycoslint.registry.FAST_PATH_GATES` owes the repository
  a test that imports it and asserts equality against its reference.

Each rule names the registry it checks against, so the fix for a false
positive is always explicit: either correct the code or register the
module (reviewed in the same diff).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from tools.tycoslint.engine import ProjectRule, Violation, register
from tools.tycoslint.project import ModuleInfo, ProjectModel
from tools.tycoslint.registry import (
    BACKEND_MODULES,
    CACHE_MODULES,
    FAST_PATH_GATES,
    PARALLEL_MODULES,
    PLAN_CONSTRUCTORS,
    PLANNER_MODULES,
    POOL_SPAWNERS,
    REPORT_MODULES,
    STORE_FILENAMES,
    STORE_MODULES,
)

__all__ = [
    "ForeignStateMutationRule",
    "MultiprocessingOutsideParallelRule",
    "CacheWriteAfterSpawnRule",
    "UnsortedSetIterationRule",
    "UnstableArgsortRule",
    "ImportTimeEnvReadRule",
    "WallClockInReportRule",
    "NumbaOutsideBackendsRule",
    "MmapOutsideStoreRule",
    "PlanConstructionOutsidePlannerRule",
    "MissingExactnessGateRule",
]

#: Method names that mutate a container (or clear a memo) in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard",
        "appendleft", "extendleft", "cache_clear",
    }
)


def _repro_module(info: ModuleInfo) -> bool:
    """Whether ``info`` is a non-test module of the ``repro`` package."""
    return not info.is_test and (
        info.name == "repro" or info.name.startswith("repro.")
    )


def _root_functions(tree: ast.Module) -> List[ast.AST]:
    """Outermost function definitions (nested defs stay inside their root)."""
    roots: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                roots.append(child)
            else:
                visit(child)

    visit(tree)
    return roots


def _resolve_state(
    expr: ast.AST, info: ModuleInfo, model: ProjectModel
) -> Optional[Tuple[str, str]]:
    """Resolve an expression to ``(owner module, state name)`` if it names
    module-level mutable state anywhere in the project.

    Handles the three spellings the repo uses: a bare name in the owning
    module (``_WORKER_STATE``), a ``from mod import NAME`` binding, and a
    module-attribute access (``parallel._WORKER_STATE``).
    """
    if isinstance(expr, ast.Name):
        if expr.id in info.state:
            return (info.name, expr.id)
        bound = info.bindings.get(expr.id)
        if bound is not None and bound[1] is not None:
            key = (bound[0], bound[1])
            if key in model.state:
                return key
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        bound = info.bindings.get(expr.value.id)
        if bound is None:
            return None
        module, attr = bound
        candidates = [module] if attr is None else [f"{module}.{attr}"]
        for candidate in candidates:
            key = (candidate, expr.attr)
            if key in model.state:
                return key
    return None


def _iter_state_mutations(
    scope: ast.AST, info: ModuleInfo, model: ProjectModel
) -> Iterator[Tuple[ast.AST, Tuple[str, str]]]:
    """Yield ``(node, (owner, name))`` for each mutation of module-level
    state inside ``scope`` (a function body)."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                resolved = _resolve_state(node.func.value, info, model)
                if resolved is not None:
                    yield node, resolved
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    resolved = _resolve_state(target.value, info, model)
                    if resolved is not None:
                        yield node, resolved
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    resolved = _resolve_state(target.value, info, model)
                    if resolved is not None:
                        yield node, resolved
        elif isinstance(node, ast.Global):
            for name in node.names:
                if (info.name, name) in model.state:
                    yield node, (info.name, name)


@register
class ForeignStateMutationRule(ProjectRule):
    """TY101: process-wide mutable state only in registered cache modules.

    A module-level container, memo cache, or ``global``-rebound name that
    some function mutates is process-wide state: after ``fork()`` every
    worker inherits a snapshot, and writes silently diverge between
    parent and children.  Only the modules registered in
    ``registry.CACHE_MODULES`` -- whose state is audited as append-only
    or repopulated by pool initializers -- may own such state.
    Import-time initialization is pre-fork and therefore exempt; the rule
    fires on mutations inside function bodies.
    """

    code = "TY101"
    name = "unregistered-cache-state"
    description = "module-level mutable state mutated outside a registered cache module"

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info):
                continue
            path = _path_of(info)
            for scope in _root_functions(info.tree):
                for node, (owner, state_name) in _iter_state_mutations(
                    scope, info, project
                ):
                    if owner in CACHE_MODULES:
                        continue
                    record = project.state[(owner, state_name)]
                    yield self.violation(
                        node,
                        f"mutates module-level state {owner}.{state_name} "
                        f"({record.kind}, defined at line {record.line}) but "
                        f"{owner} is not registered in "
                        "tools.tycoslint.registry.CACHE_MODULES; workers fork "
                        "a stale snapshot of it",
                        path,
                    )
            # A memo cache mutates itself on every call, so its mere
            # definition in an unregistered module is already a hazard.
            for record in info.state.values():
                if record.kind == "lru_cache" and info.name not in CACHE_MODULES:
                    yield Violation(
                        code=self.code,
                        message=(
                            f"lru_cache memo {info.name}.{record.name} lives in "
                            "a module not registered in CACHE_MODULES; register "
                            "it (and audit fork-safety) or drop the cache"
                        ),
                        path=str(path),
                        line=record.line,
                        col=0,
                        severity=self.severity,
                    )


@register
class MultiprocessingOutsideParallelRule(ProjectRule):
    """TY102: multiprocessing / shared-memory only in ``repro.analysis.parallel``.

    Pool and ``SharedMemory`` lifecycles are easy to leak and hard to
    audit when spread across modules; the repo concentrates them in the
    modules registered in ``registry.PARALLEL_MODULES`` so fork-safety
    review has one place to look.  Everything else submits work through
    ``pooled_map`` / ``scan_pairs_parallel``.
    """

    code = "TY102"
    name = "multiprocessing-outside-parallel"
    description = "multiprocessing/shared_memory primitives outside registered parallel modules"

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info) or info.name in PARALLEL_MODULES:
                continue
            path = _path_of(info)
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        root = alias.name.split(".")[0]
                        if root == "multiprocessing":
                            yield self.violation(
                                node,
                                f"imports {alias.name}; pool/shared-memory "
                                "lifecycles belong to the modules in "
                                "tools.tycoslint.registry.PARALLEL_MODULES "
                                "(use pooled_map)",
                                path,
                            )
                elif isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module.split(".")[0] == "multiprocessing":
                        yield self.violation(
                            node,
                            f"imports from {module}; pool/shared-memory "
                            "lifecycles belong to the modules in "
                            "tools.tycoslint.registry.PARALLEL_MODULES "
                            "(use pooled_map)",
                            path,
                        )
                    elif module == "concurrent.futures" and any(
                        alias.name == "ProcessPoolExecutor" for alias in node.names
                    ):
                        yield self.violation(
                            node,
                            "imports ProcessPoolExecutor; pool lifecycles "
                            "belong to the modules in "
                            "tools.tycoslint.registry.PARALLEL_MODULES "
                            "(use pooled_map)",
                            path,
                        )


@register
class CacheWriteAfterSpawnRule(ProjectRule):
    """TY103: no module-level state writes after a pool spawn in one function.

    Workers fork (or pickle) their view of the parent at spawn time; a
    write to module-level state later in the same function only updates
    the parent, so the parent and its workers silently disagree.  Fires
    on any resolved state mutation whose line follows a call to one of
    ``registry.POOL_SPAWNERS`` in the same function body -- registered
    cache modules included, because registration certifies pre-spawn
    discipline, not post-spawn writes.
    """

    code = "TY103"
    name = "cache-write-after-spawn"
    description = "module-level state written after a pool spawn in the same function"

    @staticmethod
    def _spawn_line(scope: ast.AST) -> Optional[int]:
        spawn: Optional[int] = None
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in POOL_SPAWNERS:
                if spawn is None or node.lineno < spawn:
                    spawn = node.lineno
        return spawn

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info):
                continue
            path = _path_of(info)
            for scope in _root_functions(info.tree):
                spawn = self._spawn_line(scope)
                if spawn is None:
                    continue
                for node, (owner, state_name) in _iter_state_mutations(
                    scope, info, project
                ):
                    if getattr(node, "lineno", 0) > spawn:
                        yield self.violation(
                            node,
                            f"writes {owner}.{state_name} after a pool spawn "
                            f"at line {spawn} in the same function; workers "
                            "already forked and will not see the write",
                            path,
                        )


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically-certain set expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra: at least one certain-set operand makes the result a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _set_typed_locals(scope: ast.AST) -> Set[str]:
    """Names assigned a certain-set expression (and never anything else)."""
    set_named: Set[str] = set()
    other: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    (set_named if _is_set_expr(node.value) else other).add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                (set_named if _is_set_expr(node.value) else other).add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    other.add(leaf.id)
    return set_named - other


@register
class UnsortedSetIterationRule(ProjectRule):
    """TY111: no bare iteration over sets in result-producing code.

    Set iteration order for strings depends on ``PYTHONHASHSEED``, so a
    loop, comprehension, or ``list()``/``join()`` over a set can change
    output ordering between two otherwise identical runs.  Membership
    tests, ``len()``, and ``sorted()`` are all fine -- the rule flags the
    iteration sinks only, for expressions that are syntactically certain
    to be sets (literals, comprehensions, ``set()`` calls and their
    algebra, locals assigned only those, module-level set state).
    """

    code = "TY111"
    name = "unsorted-set-iteration"
    description = "iteration over a set without sorted(); order depends on PYTHONHASHSEED"
    # Heuristic (set-ness is inferred syntactically), so it reports as a
    # warning -- still gating, but distinguishable in JSON output.
    severity = "warning"

    _consumers = frozenset({"list", "tuple", "enumerate"})
    #: Callables whose result does not depend on iteration order; a
    #: comprehension fed straight into one of these is sanctioned.
    _order_insensitive = frozenset(
        {"sorted", "min", "max", "any", "all", "len", "set", "frozenset"}
    )

    def _sanctioned_nodes(self, tree: ast.Module) -> Set[int]:
        """ids of comprehension nodes consumed by order-insensitive calls."""
        sanctioned: Set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._order_insensitive
            ):
                for arg in node.args:
                    if isinstance(
                        arg, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                    ):
                        sanctioned.add(id(arg))
        return sanctioned

    def _is_set_like(
        self,
        node: ast.AST,
        locals_: Set[str],
        info: ModuleInfo,
        model: ProjectModel,
    ) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name) and node.id in locals_:
            return True
        resolved = _resolve_state(node, info, model)
        if resolved is not None and model.state[resolved].kind == "set":
            return True
        return False

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info):
                continue
            path = _path_of(info)
            sanctioned = self._sanctioned_nodes(info.tree)
            scopes: List[ast.AST] = [info.tree]
            scopes.extend(_root_functions(info.tree))
            for scope in scopes:
                locals_ = _set_typed_locals(scope) if scope is not info.tree else set()
                walk = (
                    ast.walk(scope)
                    if scope is not info.tree
                    else _module_level_walk(info.tree)
                )
                for node in walk:
                    yield from self._check_node(
                        node, locals_, info, project, path, sanctioned
                    )

    def _check_node(
        self,
        node: ast.AST,
        locals_: Set[str],
        info: ModuleInfo,
        model: ProjectModel,
        path: Path,
        sanctioned: Set[int],
    ) -> Iterator[Violation]:
        message = (
            "iterates a set; wrap in sorted() -- set order depends on "
            "PYTHONHASHSEED for strings"
        )
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_like(node.iter, locals_, info, model):
                yield self.violation(node.iter, message, path)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            if id(node) in sanctioned:
                return
            for generator in node.generators:
                if self._is_set_like(generator.iter, locals_, info, model):
                    yield self.violation(generator.iter, message, path)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._consumers
                and node.args
                and self._is_set_like(node.args[0], locals_, info, model)
            ):
                yield self.violation(node, message, path)
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and self._is_set_like(node.args[0], locals_, info, model)
            ):
                yield self.violation(node, message, path)


def _module_level_walk(tree: ast.Module) -> Iterator[ast.AST]:
    """Walk a module's import-time statements, skipping function bodies."""
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack = list(ast.iter_child_nodes(node)) + stack


@register
class UnstableArgsortRule(ProjectRule):
    """TY112: ``argsort`` needs ``kind="stable"`` in repro code.

    numpy's default introsort breaks ties in an implementation-defined
    order, so the index permutation for equal keys can differ across
    numpy versions and platforms.  Every stitch/dedupe/ranking path in
    this repo pins ``kind="stable"`` so tie order is the input order,
    bit-reproducibly.
    """

    code = "TY112"
    name = "unstable-argsort"
    description = 'argsort without kind="stable"; tie order is implementation-defined'

    _stable_kinds = ("stable", "mergesort")

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info):
                continue
            path = _path_of(info)
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                is_argsort = (
                    isinstance(func, ast.Attribute) and func.attr == "argsort"
                ) or (isinstance(func, ast.Name) and func.id == "argsort")
                if not is_argsort:
                    continue
                kind = None
                for keyword in node.keywords:
                    if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
                        kind = keyword.value.value
                if kind not in self._stable_kinds:
                    yield self.violation(
                        node,
                        'argsort without kind="stable"; ties come back in an '
                        "implementation-defined order, breaking bit "
                        "reproducibility across numpy builds",
                        path,
                    )


@register
class ImportTimeEnvReadRule(ProjectRule):
    """TY113: no environment reads at import time in repro modules.

    ``os.environ`` read during import freezes configuration at whatever
    the first importer saw, so tests and CLIs that set variables later
    silently configure nothing, and import order becomes behavior.  Read
    the environment inside a function (or accept an argument) instead.
    """

    code = "TY113"
    name = "import-time-env-read"
    description = "os.environ read at module import time"

    @staticmethod
    def _is_env_read(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "environ":
            return isinstance(node.value, ast.Name) and node.value.id == "os"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "getenv":
                return isinstance(func.value, ast.Name) and func.value.id == "os"
            if isinstance(func, ast.Name) and func.id == "getenv":
                return True
        if isinstance(node, ast.Name) and node.id == "environ":
            return True
        return False

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info):
                continue
            path = _path_of(info)
            for node in _module_level_walk(info.tree):
                if self._is_env_read(node):
                    yield self.violation(
                        node,
                        "reads the environment at import time; configuration "
                        "freezes at first import and import order becomes "
                        "behavior -- read inside a function instead",
                        path,
                    )


@register
class WallClockInReportRule(ProjectRule):
    """TY114: no wall-clock calls inside registered report modules.

    The determinism sanitizer byte-diffs serialized reports; a timestamp
    or duration computed inside a module registered in
    ``registry.REPORT_MODULES`` would make every pair of runs differ.
    Timing belongs to the search layer (``SearchStats``); report modules
    only serialize what they are handed.
    """

    code = "TY114"
    name = "wall-clock-in-report"
    description = "wall-clock call inside a registered report module"

    _clock_attrs = frozenset({"time", "perf_counter", "monotonic", "now", "utcnow", "today"})

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if info.name not in REPORT_MODULES or info.is_test:
                continue
            path = _path_of(info)
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in self._clock_attrs:
                    continue
                base = func.value
                base_name = None
                if isinstance(base, ast.Name):
                    base_name = base.id
                elif isinstance(base, ast.Attribute):
                    base_name = base.attr
                if base_name in ("time", "datetime", "date"):
                    yield self.violation(
                        node,
                        f"{base_name}.{func.attr}() inside a report module; "
                        "report payloads must be clock-free so byte-diffing "
                        "two runs means something (pass timing in from the "
                        "search layer if needed)",
                        path,
                    )


@register
class NumbaOutsideBackendsRule(ProjectRule):
    """TY115: numba and compiled-kernel internals only in backend modules.

    ``numba`` is an *optional* dependency: the library must import, run,
    and produce identical results without it.  That only holds when the
    import lives behind the lazy probe in
    ``repro.mi.backends.dispatch`` -- a direct ``import numba`` anywhere
    else turns the accelerator into a hard requirement.  The compiled
    internals (``repro.mi.backends.numba_backend``,
    ``repro.mi.backends._kernels``) are likewise off-limits outside the
    modules registered in ``registry.BACKEND_MODULES``: consumers select
    an engine through ``dispatch.get_kernels``, which is where warm-up,
    fallback, and the bit-exactness contract are enforced.
    """

    code = "TY115"
    name = "numba-outside-backends"
    description = "numba import or backend internals outside registered backend modules"

    #: Backend internals nothing outside BACKEND_MODULES may import.
    _internal_modules = frozenset(
        {"repro.mi.backends.numba_backend", "repro.mi.backends._kernels"}
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info) or info.name in BACKEND_MODULES:
                continue
            path = _path_of(info)
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.split(".")[0] == "numba":
                            yield self.violation(
                                node,
                                f"imports {alias.name}; numba is optional and "
                                "belongs to the modules in "
                                "tools.tycoslint.registry.BACKEND_MODULES "
                                "(select kernels via dispatch.get_kernels)",
                                path,
                            )
                        elif alias.name in self._internal_modules:
                            yield self.violation(
                                node,
                                f"imports backend internals {alias.name}; "
                                "consumers select an engine through "
                                "repro.mi.backends.dispatch.get_kernels",
                                path,
                            )
                elif isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module.split(".")[0] == "numba":
                        yield self.violation(
                            node,
                            f"imports from {module}; numba is optional and "
                            "belongs to the modules in "
                            "tools.tycoslint.registry.BACKEND_MODULES "
                            "(select kernels via dispatch.get_kernels)",
                            path,
                        )
                    elif module in self._internal_modules or (
                        module == "repro.mi.backends"
                        and any(
                            f"{module}.{alias.name}" in self._internal_modules
                            for alias in node.names
                        )
                    ):
                        yield self.violation(
                            node,
                            f"imports backend internals from {module}; "
                            "consumers select an engine through "
                            "repro.mi.backends.dispatch.get_kernels",
                            path,
                        )


@register
class MmapOutsideStoreRule(ProjectRule):
    """TY116: memory maps and store file names only in the store module.

    The on-disk series store (``repro.analysis.store``) is a format
    contract -- a manifest plus a raw float64 matrix -- and a memory-map
    lifetime.  A second module opening ``np.memmap``/``mmap`` or
    spelling the store file names would be a second, unreviewed
    interpreter of that contract; everything else attaches through
    ``SeriesStore.open``/``SeriesStore.write``, which validate the
    manifest and own the mapping.  Registered owners live in
    ``registry.STORE_MODULES``.
    """

    code = "TY116"
    name = "mmap-outside-store"
    description = "mmap use or store file name outside registered store modules"

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info) or info.name in STORE_MODULES:
                continue
            path = _path_of(info)
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.split(".")[0] == "mmap":
                            yield self.violation(
                                node,
                                "imports mmap; memory maps belong to the "
                                "modules in tools.tycoslint.registry."
                                "STORE_MODULES (attach via "
                                "repro.analysis.store.SeriesStore)",
                                path,
                            )
                elif isinstance(node, ast.ImportFrom):
                    if (node.module or "").split(".")[0] == "mmap":
                        yield self.violation(
                            node,
                            "imports from mmap; memory maps belong to the "
                            "modules in tools.tycoslint.registry."
                            "STORE_MODULES (attach via "
                            "repro.analysis.store.SeriesStore)",
                            path,
                        )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute) and func.attr == "memmap":
                        yield self.violation(
                            node,
                            "calls memmap(); memory maps belong to the "
                            "modules in tools.tycoslint.registry."
                            "STORE_MODULES (attach via "
                            "repro.analysis.store.SeriesStore)",
                            path,
                        )
                elif isinstance(node, ast.Constant):
                    if node.value in STORE_FILENAMES:
                        yield self.violation(
                            node,
                            f"spells the store file name {node.value!r}; the "
                            "store layout is a format contract owned by "
                            "tools.tycoslint.registry.STORE_MODULES (go "
                            "through repro.analysis.store.SeriesStore)",
                            path,
                        )


@register
class PlanConstructionOutsidePlannerRule(ProjectRule):
    """TY117: plan construction and strategy dispatch only in the planner.

    A :class:`~repro.analysis.planner.SearchPlan` is a validated
    composition contract: the stage grammar, the byte-identity
    guarantees of each stage executor, and the provenance fingerprint
    all live in ``repro.analysis.planner``.  A module that instantiates
    ``SearchPlan`` or a stage class directly grows its own side-channel
    orchestration -- exactly the ad-hoc plumbing the planner refactor
    retired from ``Tycos.search`` / ``search_segmented`` /
    ``search_multiscale``.  Everything outside the modules registered in
    ``registry.PLANNER_MODULES`` obtains plans through the builder
    functions (``plain_plan`` / ``segmented_plan`` / ``multiscale_plan``
    / ``composed_plan`` / ``plan_from_config`` / ``parse_plan_spec`` /
    ``auto_plan``), which validate the composition and keep its
    spelling canonical.
    """

    code = "TY117"
    name = "plan-construction-outside-planner"
    description = "SearchPlan/stage constructed outside registered planner modules"

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for info in project.modules.values():
            if not _repro_module(info) or info.name in PLANNER_MODULES:
                continue
            path = _path_of(info)
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in PLAN_CONSTRUCTORS:
                    yield self.violation(
                        node,
                        f"constructs {name} directly; plan construction is "
                        "confined to the modules in tools.tycoslint."
                        "registry.PLANNER_MODULES -- build plans through "
                        "the repro.analysis.planner builder functions "
                        "(plain_plan / segmented_plan / multiscale_plan / "
                        "composed_plan / plan_from_config / auto_plan)",
                        path,
                    )


@register
class MissingExactnessGateRule(ProjectRule):
    """TY121: every registered fast path has a bit-exactness gate test.

    ``registry.FAST_PATH_GATES`` lists the modules whose results are
    claimed identical to a reference implementation.  This rule checks
    the claim is *tested*: some test module must import the fast-path
    module and contain an equality assertion (``assert ... == ...`` or a
    ``numpy.testing`` equality helper).  Runs only when test files are in
    scope -- lint ``src tests`` together, as CI does.
    """

    code = "TY121"
    name = "missing-exactness-gate"
    description = "registered fast-path module without an equality-asserting test"

    _equality_helpers = frozenset(
        {"array_equal", "assert_array_equal", "assert_equal", "assert_allclose"}
    )

    def _asserts_equality(self, tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                for leaf in ast.walk(node.test):
                    if isinstance(leaf, ast.Compare) and any(
                        isinstance(op, ast.Eq) for op in leaf.ops
                    ):
                        return True
            elif isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in self._equality_helpers:
                    return True
        return False

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        if not project.has_tests:
            return
        for dotted, reference in sorted(FAST_PATH_GATES.items()):
            info = project.modules.get(dotted)
            if info is None or info.is_test:
                continue
            gates = [
                test
                for test in project.tests_importing(dotted)
                if self._asserts_equality(test.tree)
            ]
            if not gates:
                yield Violation(
                    code=self.code,
                    message=(
                        f"fast path {dotted} is registered in FAST_PATH_GATES "
                        f"(reference: {reference}) but no test module imports "
                        "it and asserts equality; add a bit-exactness gate "
                        "test or unregister the module"
                    ),
                    path=info.path,
                    line=1,
                    col=0,
                    severity=self.severity,
                )


def _path_of(info: ModuleInfo) -> Path:
    return Path(info.path)

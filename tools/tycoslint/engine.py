"""tycoslint rule engine: AST visitors, rule registry, file walking.

The engine runs two passes.  Pass 1 parses every file once and builds
the whole-program :class:`~tools.tycoslint.project.ProjectModel`; pass 2
runs the rules: per-file :class:`Rule` subclasses see one parsed module
at a time, :class:`ProjectRule` subclasses (the TY100+ families) see the
project model and can reason across modules.  Rules register themselves
via the :func:`register` decorator; the CLI selects among the registered
rules with ``--select`` / ``--ignore``.

A finding can be silenced at its site with an inline pragma on the
flagged line (``# tycoslint: disable=TY101``) or accepted wholesale in a
checked-in baseline file (:mod:`tools.tycoslint.baseline`).

Everything is standard library only, so the linter runs in any
environment that can run the test suite.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from tools.tycoslint.project import ProjectModel

__all__ = [
    "Violation",
    "Rule",
    "ProjectRule",
    "register",
    "registered_rules",
    "resolve_rules",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "is_test_path",
    "pragma_codes",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation at a concrete source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "error"

    def render(self) -> str:
        """Human-readable one-liner, editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule:
    """Base class for tycoslint rules.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description` and
    implement :meth:`check`.  :meth:`applies_to` lets a rule scope itself
    to a subtree of the repository (e.g. only ``repro/mi`` and
    ``repro/core``), keeping rule logic and rule scope in one place.
    """

    code: str = "TY000"
    name: str = "abstract-rule"
    description: str = ""
    severity: str = "error"

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` (default: every file)."""
        return True

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        """Yield violations found in the parsed module."""
        raise NotImplementedError

    def violation(self, node: ast.AST, message: str, path: Path) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            code=self.code,
            message=message,
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (the TY100+ families).

    A project rule sees the :class:`~tools.tycoslint.project.ProjectModel`
    instead of one module at a time, so it can relate state defined in
    one file to mutations in another, or a source module to its test
    coverage.  Project rules yield nothing from the per-file
    :meth:`check` entry point (``lint_source`` on a lone snippet has no
    project to analyze); :func:`lint_paths` calls :meth:`check_project`
    once per run.
    """

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: "ProjectModel") -> Iterator[Violation]:
        """Yield violations found across the whole project."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_cls.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """A copy of the code -> rule-class registry."""
    return dict(_REGISTRY)


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the selected rules.

    Args:
        select: rule codes to run (default: all registered).
        ignore: rule codes to drop from the selection.

    Raises:
        KeyError: if a selected/ignored code is not registered.
    """
    known = registered_rules()
    for code in list(select or []) + list(ignore or []):
        if code not in known:
            raise KeyError(f"unknown rule code {code!r}; known: {', '.join(sorted(known))}")
    chosen = list(select) if select else sorted(known)
    dropped = set(ignore or [])
    return [known[code]() for code in chosen if code not in dropped]


def is_test_path(path: Path) -> bool:
    """True for files under a ``tests/`` tree or named like pytest files."""
    parts = path.as_posix().split("/")
    if "tests" in parts:
        return True
    name = path.name
    return name.startswith("test_") or name == "conftest.py"


@dataclass
class LintReport:
    """Outcome of a lint run: violations plus files that failed to parse."""

    violations: List[Violation]
    parse_errors: List[str]
    #: count of findings silenced by inline ``# tycoslint: disable=`` pragmas.
    pragma_suppressed: int = 0
    #: count of findings filtered by the baseline (set by the CLI layer).
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors


_PRAGMA = re.compile(r"#\s*tycoslint:\s*disable=([A-Z0-9,\s]+)")


def pragma_codes(line: str) -> frozenset:
    """Rule codes an inline pragma on ``line`` disables (empty if none)."""
    match = _PRAGMA.search(line)
    if match is None:
        return frozenset()
    return frozenset(code.strip() for code in match.group(1).split(",") if code.strip())


def _apply_pragmas(
    violations: List[Violation], lines_for_path: Dict[str, List[str]]
) -> "tuple[List[Violation], int]":
    """Drop findings whose flagged source line carries a disable pragma."""
    kept: List[Violation] = []
    suppressed = 0
    for violation in violations:
        lines = lines_for_path.get(violation.path)
        if lines is not None and 1 <= violation.line <= len(lines):
            if violation.code in pragma_codes(lines[violation.line - 1]):
                suppressed += 1
                continue
        kept.append(violation)
    return kept, suppressed


def lint_source(source: str, path: Path, rules: Sequence[Rule]) -> List[Violation]:
    """Lint one module given as source text (the unit-test entry point).

    Runs the per-file rules only (a lone snippet has no project model);
    inline pragmas are honored.

    Raises:
        SyntaxError: if the source does not parse.
    """
    tree = ast.parse(source, filename=str(path))
    found: List[Violation] = []
    for rule in rules:
        if rule.applies_to(path):
            found.extend(rule.check(tree, path))
    found, _ = _apply_pragmas(found, {str(path): source.splitlines()})
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def lint_file(path: Path, rules: Sequence[Rule]) -> List[Violation]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path, rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen = set()
    collected: List[Path] = []
    for entry in paths:
        if entry.is_dir():
            collected.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            collected.append(entry)
    for path in collected:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            yield path


def lint_paths(
    paths: Iterable[Path],
    rules: Sequence[Rule],
    *,
    cache_path: Optional[Path] = None,
    project: Optional["ProjectModel"] = None,
) -> LintReport:
    """Lint every python file under ``paths`` with ``rules`` (both passes).

    Pass 1 builds (or reuses) the project model; pass 2 runs the per-file
    rules over each parsed module and the :class:`ProjectRule` subclasses
    once over the model.  Inline pragmas are applied to both passes.

    Args:
        paths: files/directories to lint.
        rules: instantiated rules (see :func:`resolve_rules`).
        cache_path: optional on-disk project-model cache, keyed by file
            ``(mtime_ns, size)`` so warm runs skip unchanged parses.
        project: a pre-built model (skips pass 1; ``paths`` ignored).
    """
    if project is None:
        from tools.tycoslint.project import build_project

        project = build_project(paths, cache_path=cache_path)
    violations: List[Violation] = []
    lines_for_path: Dict[str, List[str]] = {}
    for info in project.modules.values():
        lines_for_path[info.path] = info.lines
        path = Path(info.path)
        for rule in rules:
            if not isinstance(rule, ProjectRule) and rule.applies_to(path):
                violations.extend(rule.check(info.tree, path))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.check_project(project))
    violations, suppressed = _apply_pragmas(violations, lines_for_path)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintReport(
        violations=violations,
        parse_errors=list(project.parse_errors),
        pragma_suppressed=suppressed,
    )

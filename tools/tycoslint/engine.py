"""tycoslint rule engine: AST visitors, rule registry, file walking.

The engine is deliberately small: a :class:`Rule` owns a stable code
(``TY0xx``), decides which files it applies to, and yields
:class:`Violation` records from a parsed module.  Rules register
themselves via the :func:`register` decorator; the CLI selects among the
registered rules with ``--select`` / ``--ignore``.

Everything is standard library only, so the linter runs in any
environment that can run the test suite.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "Violation",
    "Rule",
    "register",
    "registered_rules",
    "resolve_rules",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "is_test_path",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation at a concrete source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        """Human-readable one-liner, editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule:
    """Base class for tycoslint rules.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description` and
    implement :meth:`check`.  :meth:`applies_to` lets a rule scope itself
    to a subtree of the repository (e.g. only ``repro/mi`` and
    ``repro/core``), keeping rule logic and rule scope in one place.
    """

    code: str = "TY000"
    name: str = "abstract-rule"
    description: str = ""

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` (default: every file)."""
        return True

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        """Yield violations found in the parsed module."""
        raise NotImplementedError

    def violation(self, node: ast.AST, message: str, path: Path) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            code=self.code,
            message=message,
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_cls.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """A copy of the code -> rule-class registry."""
    return dict(_REGISTRY)


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the selected rules.

    Args:
        select: rule codes to run (default: all registered).
        ignore: rule codes to drop from the selection.

    Raises:
        KeyError: if a selected/ignored code is not registered.
    """
    known = registered_rules()
    for code in list(select or []) + list(ignore or []):
        if code not in known:
            raise KeyError(f"unknown rule code {code!r}; known: {', '.join(sorted(known))}")
    chosen = list(select) if select else sorted(known)
    dropped = set(ignore or [])
    return [known[code]() for code in chosen if code not in dropped]


def is_test_path(path: Path) -> bool:
    """True for files under a ``tests/`` tree or named like pytest files."""
    parts = path.as_posix().split("/")
    if "tests" in parts:
        return True
    name = path.name
    return name.startswith("test_") or name == "conftest.py"


@dataclass
class LintReport:
    """Outcome of a lint run: violations plus files that failed to parse."""

    violations: List[Violation]
    parse_errors: List[str]

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors


def lint_source(source: str, path: Path, rules: Sequence[Rule]) -> List[Violation]:
    """Lint one module given as source text (the unit-test entry point).

    Raises:
        SyntaxError: if the source does not parse.
    """
    tree = ast.parse(source, filename=str(path))
    found: List[Violation] = []
    for rule in rules:
        if rule.applies_to(path):
            found.extend(rule.check(tree, path))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def lint_file(path: Path, rules: Sequence[Rule]) -> List[Violation]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path, rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen = set()
    collected: List[Path] = []
    for entry in paths:
        if entry.is_dir():
            collected.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            collected.append(entry)
    for path in collected:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            yield path


def lint_paths(paths: Iterable[Path], rules: Sequence[Rule]) -> LintReport:
    """Lint every python file under ``paths`` with ``rules``."""
    violations: List[Violation] = []
    parse_errors: List[str] = []
    for path in iter_python_files(paths):
        try:
            violations.extend(lint_file(path, rules))
        except SyntaxError as exc:
            parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
    return LintReport(violations=violations, parse_errors=parse_errors)

"""Entry point: ``python -m tools.tycoslint``."""

import sys

from tools.tycoslint.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""tycoslint: the TYCOS reproduction's repository-specific linter.

A two-pass whole-program analyzer.  Pass 1
(:mod:`tools.tycoslint.project`) parses every file once and builds the
project model -- module graph, import bindings, module-level
mutable-state inventory, test <-> source mapping.  Pass 2 runs the
rules: the per-file families (:mod:`tools.tycoslint.rules`, TY001-TY008)
see one AST at a time; the cross-module families
(:mod:`tools.tycoslint.program_rules`, TY101-TY121) see the model and
enforce fork-safety, determinism, and bit-exactness-gate coverage
against the declared architecture in :mod:`tools.tycoslint.registry`.

Run it with::

    python -m tools.tycoslint src tests

Accepted findings live in ``tools/tycoslint/baseline.txt``; the runtime
determinism sanitizer is ``python -m tools.tycoslint.sanitize``.
"""

from tools.tycoslint.engine import (
    LintReport,
    ProjectRule,
    Rule,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    registered_rules,
    resolve_rules,
)
from tools.tycoslint.project import ProjectModel, build_project

__all__ = [
    "Rule",
    "ProjectRule",
    "Violation",
    "LintReport",
    "ProjectModel",
    "build_project",
    "lint_source",
    "lint_file",
    "lint_paths",
    "registered_rules",
    "resolve_rules",
]

"""tycoslint: the TYCOS reproduction's repository-specific AST linter.

A small rule engine (:mod:`tools.tycoslint.engine`) plus six rules
(:mod:`tools.tycoslint.rules`) that machine-enforce invariants generic
linters cannot know about: float-equality bans in the numerical
packages, seeded-randomness discipline, honest ``__all__`` exports, and
monotonic-clock timing.  Run it with::

    python -m tools.tycoslint src tests
"""

from tools.tycoslint.engine import (
    LintReport,
    Rule,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    registered_rules,
    resolve_rules,
)

__all__ = [
    "Rule",
    "Violation",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "registered_rules",
    "resolve_rules",
]

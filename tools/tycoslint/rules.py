"""Repository-specific tycoslint rules (TY001 - TY008).

Each rule machine-enforces an invariant the TYCOS reproduction relies on
but that generic linters do not check:

* TY001 -- float equality comparisons inside the numerical packages
  (``repro.mi``, ``repro.core``) silently break under round-off.
* TY002 -- unseeded randomness outside tests destroys the determinism
  guarantee (same ``TycosConfig.seed`` => bit-identical results).
* TY003 -- mutable default arguments alias state across calls.
* TY004 -- every public ``repro`` module must declare ``__all__`` and
  every listed name must actually exist, keeping the API surface honest.
* TY005 -- bare ``except:`` and ``except Exception: pass`` swallow the
  very contract violations this repo installs.
* TY006 -- ``time.time()`` is wall-clock and jumps with NTP; interval
  timing must use ``time.perf_counter()`` (the sanctioned wall-clock
  site is the ``SearchStats`` timing in ``repro/core/tycos.py``).
* TY007 -- ``scipy.special.digamma`` must only be called through the
  shared lookup table in ``repro/mi/digamma.py``; direct calls re-pay
  the transcendental per window and bypass the process-wide cache.
* TY008 -- PAA block-mean downsampling must only be built through
  ``repro/core/pyramid.py``; a hand-rolled ``reshape(...).mean(...)``
  elsewhere silently diverges from the pyramid containment lemma the
  multiscale search's recall guarantee rests on.

The cross-module families (TY101+: fork-safety, determinism, gate
coverage) live in :mod:`tools.tycoslint.program_rules` -- they need the
whole-program model, not a single AST.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from tools.tycoslint.engine import Rule, Violation, is_test_path, register

__all__ = [
    "FloatEqualityRule",
    "UnseededRandomRule",
    "MutableDefaultRule",
    "DunderAllRule",
    "SilentExceptRule",
    "WallClockRule",
    "DigammaRule",
    "PaaConstructionRule",
]


def _in_packages(path: Path, packages: Tuple[str, ...]) -> bool:
    posix = path.as_posix()
    return any(f"/{pkg}/" in posix or posix.startswith(f"{pkg}/") for pkg in packages)


def _is_np_random_attr(node: ast.AST) -> Optional[str]:
    """Return the attribute name when ``node`` is ``np.random.<attr>``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


@register
class FloatEqualityRule(Rule):
    """TY001: no ``==`` / ``!=`` against float literals in repro.mi / repro.core.

    Round-off makes exact float comparison order-of-evaluation dependent;
    the numerical packages must compare with a tolerance
    (``math.isclose`` / ``np.isclose``) or restructure the test.
    """

    code = "TY001"
    name = "float-equality"
    description = "float ==/!= comparison in the numerical packages"

    _packages = ("repro/mi", "repro/core")

    def applies_to(self, path: Path) -> bool:
        return _in_packages(path, self._packages)

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        # A negated float literal parses as UnaryOp(USub, Constant).
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return FloatEqualityRule._is_float_literal(node.operand)
        return False

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield self.violation(
                        node,
                        "float equality comparison; use math.isclose/np.isclose "
                        "or an explicit tolerance",
                        path,
                    )
                    break


@register
class UnseededRandomRule(Rule):
    """TY002: no unseeded randomness outside tests.

    Flags ``np.random.default_rng()`` called without a seed and any call
    into the legacy global RNG (``np.random.normal`` etc.), both of which
    break the same-seed => same-result determinism contract.
    """

    code = "TY002"
    name = "unseeded-random"
    description = "unseeded np.random.default_rng() / legacy global RNG call"

    # Constructors that are fine *when given a seed*.
    _seedable = ("default_rng", "RandomState", "Generator", "SeedSequence")

    def applies_to(self, path: Path) -> bool:
        return not is_test_path(path)

    @staticmethod
    def _has_seed(call: ast.Call) -> bool:
        if call.args:
            return not (
                isinstance(call.args[0], ast.Constant) and call.args[0].value is None
            )
        return any(kw.arg == "seed" for kw in call.keywords)

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            attr = _is_np_random_attr(node.func)
            if attr is None:
                # `from numpy.random import default_rng` style.
                if isinstance(node.func, ast.Name) and node.func.id == "default_rng":
                    if not self._has_seed(node):
                        yield self.violation(
                            node, "default_rng() called without a seed", path
                        )
                continue
            if attr in self._seedable:
                if not self._has_seed(node):
                    yield self.violation(
                        node, f"np.random.{attr}() called without a seed", path
                    )
            else:
                yield self.violation(
                    node,
                    f"np.random.{attr}() uses the unseeded global RNG; "
                    "thread a seeded np.random.Generator instead",
                    path,
                )


@register
class MutableDefaultRule(Rule):
    """TY003: no mutable default arguments.

    A ``def f(x=[])`` default is evaluated once and shared across calls;
    use ``None`` plus an in-body fallback (or a dataclass field factory).
    """

    code = "TY003"
    name = "mutable-default"
    description = "mutable default argument"

    _mutable_calls = {
        "list", "dict", "set", "bytearray",
        "defaultdict", "OrderedDict", "Counter", "deque",
    }

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._mutable_calls
        return False

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        default,
                        f"mutable default argument in {name}(); "
                        "use None and initialize inside the body",
                        path,
                    )


@register
class DunderAllRule(Rule):
    """TY004: public repro modules declare ``__all__`` and it is honest.

    Every non-underscore module under the ``repro`` package must assign a
    literal ``__all__`` of strings, and each listed name must be defined
    or imported at module top level.
    """

    code = "TY004"
    name = "dunder-all"
    description = "missing or inconsistent __all__ in a public repro module"

    def applies_to(self, path: Path) -> bool:
        if not _in_packages(path, ("repro",)):
            return False
        stem = path.stem
        return stem == "__init__" or not stem.startswith("_")

    @staticmethod
    def _top_level_names(tree: ast.Module) -> Tuple[Set[str], bool]:
        """Names bound at module top level, plus a star-import flag."""
        names: Set[str] = set()
        has_star = False
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                # Common for TYPE_CHECKING / optional-dependency guards.
                sub = ast.Module(body=list(ast.iter_child_nodes(node)), type_ignores=[])
                sub_names, sub_star = DunderAllRule._top_level_names(sub)
                names |= sub_names
                has_star |= sub_star
        return names, has_star

    @staticmethod
    def _find_all(tree: ast.Module) -> Optional[ast.Assign]:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        return node
        return None

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        assign = self._find_all(tree)
        if assign is None:
            yield Violation(
                code=self.code,
                message="public module does not declare __all__",
                path=str(path),
                line=1,
                col=0,
            )
            return
        value = assign.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield self.violation(assign, "__all__ must be a literal list/tuple", path)
            return
        entries: List[Tuple[str, ast.AST]] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append((element.value, element))
            else:
                yield self.violation(element, "__all__ entries must be string literals", path)
        defined, has_star = self._top_level_names(tree)
        if has_star:
            return  # cannot verify through a star import
        for name, element in entries:
            if name not in defined and name != "__version__":
                yield self.violation(
                    element, f"__all__ lists {name!r} which is not defined in the module", path
                )


@register
class SilentExceptRule(Rule):
    """TY005: no bare ``except:`` and no ``except Exception: pass``.

    Bare excepts catch ``KeyboardInterrupt``/``SystemExit``; silently
    passing on ``Exception`` swallows contract violations.  Catch the
    narrowest exception that the handler can actually handle.
    """

    code = "TY005"
    name = "silent-except"
    description = "bare except or silently swallowed Exception"

    @staticmethod
    def _catches_broad(node: ast.ExceptHandler) -> bool:
        def is_broad(expr: ast.AST) -> bool:
            return isinstance(expr, ast.Name) and expr.id in ("Exception", "BaseException")

        if node.type is None:
            return False  # bare except reported separately
        if is_broad(node.type):
            return True
        if isinstance(node.type, ast.Tuple):
            return any(is_broad(e) for e in node.type.elts)
        return False

    @staticmethod
    def _is_silent(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and (stmt.value.value is Ellipsis or isinstance(stmt.value.value, str))
            ):
                continue  # docstring / ellipsis placeholders are still silent
            return False
        return True

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    node, "bare except: catches SystemExit/KeyboardInterrupt; "
                    "name the exception type", path,
                )
            elif self._catches_broad(node) and self._is_silent(node.body):
                yield self.violation(
                    node, "except Exception with a pass-only body silently "
                    "swallows errors; handle or re-raise", path,
                )


@register
class WallClockRule(Rule):
    """TY006: ``time.time()`` only for ``SearchStats`` timing.

    Interval measurement must use the monotonic ``time.perf_counter()``;
    the only sanctioned wall-clock site is the ``SearchStats`` timing in
    ``repro/core/tycos.py``.
    """

    code = "TY006"
    name = "wall-clock"
    description = "time.time() used outside SearchStats timing"

    _sanctioned = "repro/core/tycos.py"

    def applies_to(self, path: Path) -> bool:
        if is_test_path(path):
            return False
        return not path.as_posix().endswith(self._sanctioned)

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield self.violation(
                    node,
                    "time.time() is wall-clock; use time.perf_counter() for "
                    "intervals (SearchStats timing in repro/core/tycos.py is "
                    "the only sanctioned wall-clock site)",
                    path,
                )


@register
class DigammaRule(Rule):
    """TY007: scipy digamma only through ``repro/mi/digamma.py``.

    Every digamma argument in the KSG kernel is a small positive integer,
    so evaluations must come from the shared
    :class:`repro.mi.digamma.DigammaTable` (bit-identical, evaluated once
    per integer ever seen).  Direct ``scipy.special.digamma`` imports or
    attribute calls anywhere else re-pay the transcendental per window
    and silently bypass the process-wide cache.
    """

    code = "TY007"
    name = "direct-digamma"
    description = "scipy.special.digamma used outside repro/mi/digamma.py"

    _sanctioned = "repro/mi/digamma.py"

    def applies_to(self, path: Path) -> bool:
        if is_test_path(path):
            return False
        return not path.as_posix().endswith(self._sanctioned)

    _message = (
        "direct scipy.special.digamma use; route through "
        "repro.mi.digamma (shared_digamma_table / digamma_direct), the "
        "only sanctioned call site"
    )

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "scipy.special" and any(
                    alias.name == "digamma" for alias in node.names
                ):
                    yield self.violation(node, self._message, path)
            elif isinstance(node, ast.Attribute) and node.attr == "digamma":
                value = node.value
                if isinstance(value, ast.Name) and value.id == "special":
                    yield self.violation(node, self._message, path)
                elif (
                    isinstance(value, ast.Attribute)
                    and value.attr == "special"
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "scipy"
                ):
                    yield self.violation(node, self._message, path)


@register
class PaaConstructionRule(Rule):
    """TY008: PAA downsampling only through ``repro/core/pyramid.py``.

    The multiscale search's recall guarantee rests on the pyramid
    containment lemma, which is proved for exactly the block-mean
    aggregation (and tail handling) that :func:`repro.core.pyramid.paa_downsample`
    implements.  A hand-rolled ``values.reshape(m, factor).mean(axis=1)``
    -- or its ``np.add.reduceat`` equivalent -- elsewhere constructs a
    downsampled pair whose coordinate mapping nothing checks, so coarse
    hits would refine the wrong full-resolution regions without any test
    failing.  Build coarse levels through ``paa_downsample`` /
    ``build_level`` instead.
    """

    code = "TY008"
    name = "paa-outside-pyramid"
    description = "block-mean downsampling built outside repro/core/pyramid.py"

    _sanctioned = "repro/core/pyramid.py"

    def applies_to(self, path: Path) -> bool:
        if is_test_path(path):
            return False
        return not path.as_posix().endswith(self._sanctioned)

    _message = (
        "hand-rolled PAA block-mean downsampling; build coarse levels "
        "through repro.core.pyramid (paa_downsample / build_level), the "
        "only sanctioned construction site"
    )

    def check(self, tree: ast.Module, path: Path) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "mean":
                inner = func.value
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "reshape"
                ):
                    yield self.violation(node, self._message, path)
            elif func.attr == "reduceat":
                value = func.value
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "add"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in ("np", "numpy")
                ):
                    yield self.violation(node, self._message, path)

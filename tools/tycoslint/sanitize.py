"""Runtime determinism sanitizer: byte-diff reports across hostile settings.

The static rules (TY110s) catch the *patterns* that break determinism;
this harness checks the *property* end to end: the pinned workload --- a
coupled pair plus a pairwise scan, the same shape the tier-1 tests pin
--- must serialize to byte-identical reports however the run is
scheduled.  Each variant runs in a fresh child interpreter because
``PYTHONHASHSEED`` must be set before Python starts:

* ``PYTHONHASHSEED`` 0 vs 4242 -- catches anything whose output order
  leaks from ``str`` hashing (set/dict iteration feeding results);
* ``n_jobs`` 1 vs 2 (``force_parallel``, so the 1-core fallback does not
  quietly serialize the pool path) -- catches scheduling-order leaks;
* ``n_segments`` 1 vs 3, compared *within* each segment count --
  segmenting legitimately changes which restarts are attempted
  (``n_segments=k`` differs from ``n_segments=1`` by design, see
  :mod:`repro.analysis.segmented`), so classes are never diffed against
  each other; the scan section, which has no segment dependence, *is*
  compared across every variant.

On a mismatch the sanitizer fails loudly with a field-level diff of the
parsed payloads, not just "bytes differ".  ``--inject`` plants an
artificial nondeterminism (a ``list()`` over a set of strings, whose
order follows ``PYTHONHASHSEED``) to prove the failure path works; CI
runs ``--smoke`` without injection and expects exit 0.

Usage::

    python -m tools.tycoslint.sanitize --smoke           # CI gate
    python -m tools.tycoslint.sanitize                   # full workload
    python -m tools.tycoslint.sanitize --smoke --inject  # must FAIL
    python -m tools.tycoslint.sanitize --smoke --backend numba
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "build_payload",
    "canonical_bytes",
    "field_diff",
    "run_matrix",
    "main",
]

REPO_ROOT = Path(__file__).resolve().parents[2]

FORMAT = "tycoslint-sanitizer/1"

#: (PYTHONHASHSEED, n_jobs) variants run for every segment count.
VARIANTS: Tuple[Tuple[str, int], ...] = (("0", 1), ("0", 2), ("4242", 1), ("4242", 2))

#: Segment counts; payloads are compared within each class only.
SEGMENT_CLASSES: Tuple[int, ...] = (1, 3)


# --------------------------------------------------------------------- #
# Workload (runs inside the child interpreter)


def _make_series(length: int, seed: int) -> Dict[str, Any]:
    """The pinned workload data: a coupled pair plus an uncoupled series.

    Mirrors the tier-1 segmented-search fixture: uniform noise with
    delayed-copy episodes at fixed fractional positions, so every length
    carries correlated windows for the search to find.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, length)
    y = rng.uniform(-1.0, 1.0, length)
    for fraction, span, delay in ((0.07, 70, 4), (0.37, 90, -3), (0.71, 80, 6)):
        start = int(fraction * length)
        stop = min(start + span, length - abs(delay) - 1)
        if stop <= start:
            continue
        y[start + delay : stop + delay] = x[start:stop]
    noise = rng.uniform(-1.0, 1.0, length)
    return {"a": x, "b": y, "c": noise}


def _make_config(
    seed: int, backend: str = "numpy", precision: str = "float64"
) -> Any:
    from repro.core.config import TycosConfig

    return TycosConfig(
        sigma=0.3,
        s_min=8,
        s_max=60,
        td_max=10,
        jitter=1e-6,
        init_delay_step=1,
        significance_permutations=10,
        seed=seed,
        backend=backend,
        precision=precision,
    )


def build_payload(
    length: int,
    seed: int,
    n_segments: int,
    n_jobs: int,
    inject: bool,
    backend: str = "numpy",
    precision: str = "float64",
) -> Dict[str, Any]:
    """Run the pinned workload and distill a canonical, clock-free payload.

    Wall-clock values (``runtime_seconds``, per-phase timings) and
    execution advisories (``report.notes``) are deliberately excluded:
    they attribute a run, they are not results.
    """
    from repro.analysis.parallel import scan_pairs_parallel
    from repro.analysis.segmented import search_segmented

    series = _make_series(length, seed)
    config = _make_config(seed=3, backend=backend, precision=precision)
    # n_jobs is deliberately NOT recorded: like PYTHONHASHSEED it is a
    # knob the report must not depend on.  n_segments stays because it
    # legitimately shapes the result (see module docstring); so do
    # backend/precision -- the matrix runs one engine, all its variants
    # must agree, and the params name which engine that was.
    payload: Dict[str, Any] = {
        "format": FORMAT,
        "params": {
            "length": length,
            "seed": seed,
            "n_segments": n_segments,
            "backend": backend,
            "precision": precision,
        },
    }
    if inject:
        # Artificial nondeterminism: list() over a set of strings follows
        # PYTHONHASHSEED.  Exists to prove the sanitizer fails loudly.
        payload["hash_probe"] = list({f"probe-{i:02d}" for i in range(24)})

    result = search_segmented(
        series["a"],
        series["b"],
        config,
        n_segments=n_segments,
        n_jobs=n_jobs,
        force_parallel=n_jobs > 1,
    )
    payload["search"] = {
        "windows": [
            [*r.window.key(), float(r.mi), float(r.nmi)] for r in result.windows
        ],
        "segments": result.stats.segments,
        "stitch_dedups": result.stats.stitch_dedups,
        "stitch_rescores": result.stats.stitch_rescores,
    }

    report = scan_pairs_parallel(
        series, config, n_jobs=n_jobs, force_parallel=n_jobs > 1
    )
    payload["scan"] = {
        "findings": [
            {
                "source": f.source,
                "target": f.target,
                "windows": f.windows,
                "best_nmi": float(f.best_nmi),
                "delay_range": list(f.delay_range) if f.delay_range else None,
            }
            for f in report.findings
        ],
        "skipped": [list(pair) for pair in report.skipped],
        "failures": [[f.source, f.target, f.error] for f in report.failures],
    }
    return payload


def canonical_bytes(payload: Dict[str, Any]) -> bytes:
    """Stable serialization: the bytes the matrix diffs."""
    return json.dumps(payload, sort_keys=True, indent=1).encode("utf-8") + b"\n"


# --------------------------------------------------------------------- #
# Field-level diff


def field_diff(first: Any, second: Any, prefix: str = "$") -> List[str]:
    """Recursive structural diff of two parsed JSON payloads."""
    if type(first) is not type(second):
        return [
            f"{prefix}: type {type(first).__name__} != {type(second).__name__}"
        ]
    diffs: List[str] = []
    if isinstance(first, dict):
        for key in sorted(set(first) | set(second)):
            here = f"{prefix}.{key}"
            if key not in first:
                diffs.append(f"{here}: only in second")
            elif key not in second:
                diffs.append(f"{here}: only in first")
            else:
                diffs.extend(field_diff(first[key], second[key], here))
    elif isinstance(first, list):
        if len(first) != len(second):
            diffs.append(f"{prefix}: length {len(first)} != {len(second)}")
        for index, (a, b) in enumerate(zip(first, second)):
            diffs.extend(field_diff(a, b, f"{prefix}[{index}]"))
    elif first != second:
        diffs.append(f"{prefix}: {first!r} != {second!r}")
    return diffs


# --------------------------------------------------------------------- #
# Matrix driver (parent process)


def _child_env(hashseed: str) -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = str(REPO_ROOT / "src")
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not extra else src + os.pathsep + extra
    return env


def _run_child(
    out: Path,
    length: int,
    seed: int,
    n_segments: int,
    n_jobs: int,
    hashseed: str,
    inject: bool,
    backend: str,
    precision: str,
) -> None:
    command = [
        sys.executable,
        "-m",
        "tools.tycoslint.sanitize",
        "--worker",
        "--out",
        str(out),
        "--length",
        str(length),
        "--seed",
        str(seed),
        "--n-segments",
        str(n_segments),
        "--n-jobs",
        str(n_jobs),
        "--backend",
        backend,
        "--precision",
        precision,
    ]
    if inject:
        command.append("--inject")
    subprocess.run(
        command, cwd=REPO_ROOT, env=_child_env(hashseed), check=True, timeout=900
    )


def _variant_name(n_segments: int, hashseed: str, n_jobs: int) -> str:
    return f"segments={n_segments} hashseed={hashseed} n_jobs={n_jobs}"


def run_matrix(
    length: int,
    seed: int,
    inject: bool,
    work_dir: Path,
    backend: str = "numpy",
    precision: str = "float64",
) -> Tuple[bool, List[str]]:
    """Run every variant; returns ``(ok, human-readable problem lines)``.

    Byte-compares payloads within each ``n_segments`` class, and the
    scan section (segment-independent) across every variant.  The whole
    matrix runs one ``backend``/``precision`` engine: determinism must
    hold *per engine*, so CI drives the sanitizer once per backend of
    interest rather than diffing engines against each other.
    """
    problems: List[str] = []
    payloads: Dict[Tuple[int, str, int], bytes] = {}
    for n_segments in SEGMENT_CLASSES:
        for hashseed, n_jobs in VARIANTS:
            out = work_dir / f"report-s{n_segments}-h{hashseed}-j{n_jobs}.json"
            _run_child(
                out, length, seed, n_segments, n_jobs, hashseed, inject,
                backend, precision,
            )
            payloads[(n_segments, hashseed, n_jobs)] = out.read_bytes()

    for n_segments in SEGMENT_CLASSES:
        reference_key = (n_segments, *VARIANTS[0])
        reference = payloads[reference_key]
        for hashseed, n_jobs in VARIANTS[1:]:
            candidate = payloads[(n_segments, hashseed, n_jobs)]
            if candidate == reference:
                continue
            problems.append(
                f"byte mismatch: {_variant_name(*reference_key)} "
                f"vs {_variant_name(n_segments, hashseed, n_jobs)}"
            )
            problems.extend(
                "  " + line
                for line in field_diff(
                    json.loads(reference), json.loads(candidate)
                )[:40]
            )

    # The scan has no segment dependence: one reference across all runs.
    scan_reference_key = (SEGMENT_CLASSES[0], *VARIANTS[0])
    scan_reference = json.loads(payloads[scan_reference_key])["scan"]
    for key, raw in payloads.items():
        scan = json.loads(raw)["scan"]
        lines = field_diff(scan_reference, scan, prefix="$.scan")
        if lines:
            problems.append(
                f"scan mismatch: {_variant_name(*scan_reference_key)} vs "
                f"{_variant_name(*key)}"
            )
            problems.extend("  " + line for line in lines[:40])
    return not problems, problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tycoslint-sanitize",
        description="Determinism sanitizer: byte-diff pinned-workload reports "
        "across PYTHONHASHSEED / n_jobs / n_segments variants.",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small workload for CI (shorter series)"
    )
    parser.add_argument(
        "--inject",
        action="store_true",
        help="plant an artificial hash-order nondeterminism (the run must fail)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload data seed")
    parser.add_argument(
        "--length", type=int, default=None, help="series length (overrides --smoke)"
    )
    parser.add_argument(
        "--keep-dir",
        metavar="DIR",
        default=None,
        help="write the per-variant payloads here (kept for inspection)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "numba"],
        default="numpy",
        help="kernel engine the whole matrix runs under (determinism is "
        "checked per engine; default: numpy)",
    )
    parser.add_argument(
        "--precision",
        choices=["float64", "float32"],
        default="float64",
        help="kernel precision tier the whole matrix runs under",
    )
    # Internal: single-variant child mode.
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--out", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--n-segments", type=int, default=1, help=argparse.SUPPRESS)
    parser.add_argument("--n-jobs", type=int, default=1, help=argparse.SUPPRESS)
    options = parser.parse_args(argv)

    length = options.length
    if length is None:
        length = 600 if options.smoke else 2000

    if options.worker:
        if options.out is None:
            parser.error("--worker requires --out")
        payload = build_payload(
            length,
            options.seed,
            options.n_segments,
            options.n_jobs,
            options.inject,
            backend=options.backend,
            precision=options.precision,
        )
        Path(options.out).write_bytes(canonical_bytes(payload))
        return 0

    def drive(work_dir: Path) -> int:
        total = len(SEGMENT_CLASSES) * len(VARIANTS)
        print(
            f"sanitize: {total} variants, length={length}, "
            f"segment classes {SEGMENT_CLASSES}, "
            f"hashseed/n_jobs {VARIANTS}, "
            f"backend={options.backend}/{options.precision}"
            + (" [INJECTED NONDETERMINISM]" if options.inject else "")
        )
        ok, problems = run_matrix(
            length,
            options.seed,
            options.inject,
            work_dir,
            backend=options.backend,
            precision=options.precision,
        )
        if ok:
            print("sanitize: all reports byte-identical within their class")
            return 0
        for line in problems:
            print(line, file=sys.stderr)
        print("sanitize: FAILED -- reports are not deterministic", file=sys.stderr)
        return 1

    if options.keep_dir is not None:
        keep = Path(options.keep_dir)
        keep.mkdir(parents=True, exist_ok=True)
        return drive(keep)
    with tempfile.TemporaryDirectory(prefix="tycoslint-sanitize-") as tmp:
        return drive(Path(tmp))


if __name__ == "__main__":
    sys.exit(main())

"""Pass 1 of the whole-program analyzer: the project model.

The per-file rules (TY001-TY008) see one AST at a time, which is exactly
why the hazards that motivated the TY100+ families were invisible to
them: a process-wide cache is *defined* in one module and *mutated* in
another, a pool is spawned in one file and the state it forked is owned
elsewhere, and the bit-exactness gate is a relationship between a source
module and a test file.  :func:`build_project` walks every Python file
once and produces a :class:`ProjectModel` the cross-module rules
(:mod:`tools.tycoslint.program_rules`) query:

* module inventory with dotted names derived from the repository layout
  (``src/repro/mi/digamma.py`` -> ``repro.mi.digamma``);
* per-module import bindings (local name -> project module / attribute),
  so a mutation of ``parallel._WORKER_STATE`` from another file resolves
  to the owning module;
* the module-level mutable-state inventory (dict/list/set/deque
  literals, ``functools.lru_cache`` memos, names rebound via
  ``global``);
* the test-file <-> source-module mapping used by the TY120 gate.

The model is cached on disk keyed by each file's ``(mtime_ns, size)``
(see :func:`build_project`'s ``cache_path``), so repeated runs re-parse
only the files that changed.  Everything is standard library only.
"""

from __future__ import annotations

import ast
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.tycoslint.engine import is_test_path, iter_python_files

__all__ = [
    "ModuleState",
    "ModuleInfo",
    "ProjectModel",
    "module_name_for",
    "build_project",
    "build_module_info",
]

#: Calls whose result is a mutable container when bound at module level.
_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
}

#: Decorator names marking a function as a module-level memo cache.
_CACHE_DECORATORS = {"lru_cache", "cache"}

#: Cache file format tag; bump when ModuleInfo's pickle layout changes.
_CACHE_VERSION = 1


@dataclass(frozen=True)
class ModuleState:
    """One piece of module-level mutable state.

    Attributes:
        module: dotted name of the owning module.
        name: the module-level binding.
        kind: ``"dict"`` / ``"list"`` / ``"set"`` / ... for container
            literals, ``"lru_cache"`` for decorated memo functions,
            ``"rebound-global"`` for names some function rebinds via
            ``global``.
        line: line of the defining statement.
    """

    module: str
    name: str
    kind: str
    line: int


@dataclass
class ModuleInfo:
    """Everything the cross-module rules need to know about one module."""

    name: str
    path: str
    tree: ast.Module
    lines: List[str]
    is_test: bool
    #: local name -> (dotted module, attribute-or-None).  ``attribute`` is
    #: set for ``from pkg.mod import NAME`` bindings, ``None`` when the
    #: local name refers to the module itself.
    bindings: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    #: every dotted module name this module imports (used by the test
    #: mapping; includes both ``pkg`` and ``pkg.mod`` candidates for
    #: ``from pkg import mod``).
    imported_modules: Set[str] = field(default_factory=set)
    #: module-level mutable state owned by this module, keyed by name.
    state: Dict[str, ModuleState] = field(default_factory=dict)


@dataclass
class ProjectModel:
    """The whole-program view pass-2 rules run against."""

    modules: Dict[str, ModuleInfo]
    #: (owner module, binding name) -> state record, across the project.
    state: Dict[Tuple[str, str], ModuleState]
    parse_errors: List[str]

    @property
    def has_tests(self) -> bool:
        """Whether any test module is in scope (gates need tests to judge)."""
        return any(info.is_test for info in self.modules.values())

    def tests_importing(self, dotted: str) -> List[ModuleInfo]:
        """Test modules that import ``dotted``, in path order."""
        found = [
            info
            for info in self.modules.values()
            if info.is_test and dotted in info.imported_modules
        ]
        found.sort(key=lambda info: info.path)
        return found

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        """The module whose source file is ``path`` (as recorded)."""
        for info in self.modules.values():
            if info.path == path:
                return info
        return None


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path, layout-anchor based.

    Anchors, in order: the last ``src`` component (dropped), then the
    first ``repro`` / last ``tests`` / last ``tools`` component (kept).
    This maps both the real tree (``src/repro/...``, ``tests/...``) and
    the fixture trees the linter's own tests build under ``tmp_path``.
    """
    parts = list(path.with_suffix("").parts)
    tail: List[str]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[anchor + 1 :]
    elif "repro" in parts:
        tail = parts[parts.index("repro") :]
    elif "tests" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("tests")
        tail = parts[anchor:]
    elif "tools" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("tools")
        tail = parts[anchor:]
    else:
        tail = [parts[-1]]
    if len(tail) > 1 and tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def _iter_top_level(tree: ast.Module):
    """Top-level statements, descending into If/Try guards (not functions)."""
    stack = list(tree.body)
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.If, ast.Try)):
            stack = list(ast.iter_child_nodes(node)) + stack


def _mutable_kind(value: ast.AST) -> Optional[str]:
    """The container kind of a module-level value, or None if immutable."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _MUTABLE_CALLS:
            return value.func.id if value.func.id in ("dict", "list", "set") else "container"
    return None


def _decorator_name(node: ast.AST) -> Optional[str]:
    """Trailing name of a decorator expression (``functools.lru_cache`` -> ``lru_cache``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_state(tree: ast.Module, module: str) -> Dict[str, ModuleState]:
    """Module-level mutable bindings: containers, memo caches, rebound globals."""
    state: Dict[str, ModuleState] = {}
    top_level_names: Dict[str, int] = {}
    for node in _iter_top_level(tree):
        if isinstance(node, ast.Assign):
            kind = _mutable_kind(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    top_level_names.setdefault(target.id, node.lineno)
                    if kind is not None and target.id != "__all__":
                        state.setdefault(
                            target.id,
                            ModuleState(module, target.id, kind, node.lineno),
                        )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            top_level_names.setdefault(node.target.id, node.lineno)
            if node.value is not None:
                kind = _mutable_kind(node.value)
                if kind is not None:
                    state.setdefault(
                        node.target.id,
                        ModuleState(module, node.target.id, kind, node.lineno),
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                if _decorator_name(decorator) in _CACHE_DECORATORS:
                    state.setdefault(
                        node.name,
                        ModuleState(module, node.name, "lru_cache", node.lineno),
                    )
    # A top-level name some function rebinds via ``global`` is mutable
    # module state regardless of the bound value's own mutability.
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                if name in top_level_names and name not in state:
                    state[name] = ModuleState(
                        module, name, "rebound-global", top_level_names[name]
                    )
    return state


def _collect_imports(
    tree: ast.Module, module: str
) -> Tuple[Dict[str, Tuple[str, Optional[str]]], Set[str]]:
    """(local bindings, imported dotted modules) for one module."""
    bindings: Dict[str, Tuple[str, Optional[str]]] = {}
    imported: Set[str] = set()
    package_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.name)
                if alias.asname:
                    bindings[alias.asname] = (alias.name, None)
                else:
                    root = alias.name.split(".")[0]
                    bindings.setdefault(root, (root, None))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - node.level]
                source = ".".join(base + ([node.module] if node.module else []))
            else:
                source = node.module or ""
            if not source:
                continue
            imported.add(source)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                # ``from pkg import mod`` may bind a submodule; record the
                # dotted candidate so rule code can resolve either way.
                imported.add(f"{source}.{alias.name}")
                bindings[local] = (source, alias.name)
    return bindings, imported


def build_module_info(path: Path, source: str) -> ModuleInfo:
    """Parse one module and extract its model entry.

    Raises:
        SyntaxError: if the source does not parse.
    """
    tree = ast.parse(source, filename=str(path))
    name = module_name_for(path)
    bindings, imported = _collect_imports(tree, name)
    return ModuleInfo(
        name=name,
        path=path.as_posix(),
        tree=tree,
        lines=source.splitlines(),
        is_test=is_test_path(path),
        bindings=bindings,
        imported_modules=imported,
        state=_collect_state(tree, name),
    )


def _load_cache(cache_path: Path) -> Dict[str, Tuple[Tuple[int, int], ModuleInfo]]:
    try:
        with cache_path.open("rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def _save_cache(
    cache_path: Path, entries: Dict[str, Tuple[Tuple[int, int], ModuleInfo]]
) -> None:
    payload = {"version": _CACHE_VERSION, "entries": entries}
    tmp = cache_path.with_suffix(cache_path.suffix + ".tmp")
    try:
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(cache_path)
    except OSError:
        # A read-only checkout just re-parses next run; never fail a lint
        # over its own cache.
        try:
            tmp.unlink()
        except OSError:
            return


def build_project(
    paths: Iterable[Path], cache_path: Optional[Path] = None
) -> ProjectModel:
    """Build the whole-program model over every ``.py`` file under ``paths``.

    Args:
        paths: files/directories, expanded like the per-file lint pass.
        cache_path: optional on-disk model cache.  Entries are keyed by
            resolved path and validated against ``(mtime_ns, size)``, so
            only changed files are re-parsed; pass ``None`` to always
            parse from scratch.
    """
    cache: Dict[str, Tuple[Tuple[int, int], ModuleInfo]] = {}
    if cache_path is not None:
        cache = _load_cache(cache_path)
    fresh: Dict[str, Tuple[Tuple[int, int], ModuleInfo]] = {}
    modules: Dict[str, ModuleInfo] = {}
    parse_errors: List[str] = []
    dirty = False
    for path in iter_python_files(paths):
        key = str(path.resolve())
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
        entry = cache.get(key)
        if entry is not None and entry[0] == signature:
            info = entry[1]
        else:
            dirty = True
            try:
                info = build_module_info(path, path.read_text(encoding="utf-8"))
            except SyntaxError as exc:
                parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
                continue
        fresh[key] = (signature, info)
        modules[info.name] = info
    if cache_path is not None and (dirty or len(fresh) != len(cache)):
        _save_cache(cache_path, fresh)
    state: Dict[Tuple[str, str], ModuleState] = {}
    for info in modules.values():
        for record in info.state.values():
            state[(info.name, record.name)] = record
    return ProjectModel(modules=modules, state=state, parse_errors=parse_errors)

"""tycoslint command line interface.

Usage::

    python -m tools.tycoslint src tests
    python -m tools.tycoslint --select TY001,TY004 src
    python -m tools.tycoslint --ignore TY006 src tests
    python -m tools.tycoslint --output json src tests
    python -m tools.tycoslint --write-baseline src tests
    python -m tools.tycoslint --list-rules

Exit codes follow the pytest convention: 0 = clean, 1 = violations
found, 2 = usage or parse error.

Findings listed in the checked-in baseline file
(``tools/tycoslint/baseline.txt``; override with ``--baseline``, disable
with ``--no-baseline``) are suppressed and reported only as a count.
The project model is cached at ``.tycoslint-cache`` keyed by file
mtimes; ``--no-cache`` forces a full re-parse.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

# Importing the rule modules populates the registry as a side effect.
import tools.tycoslint.program_rules  # noqa: F401
import tools.tycoslint.rules  # noqa: F401
from tools.tycoslint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    format_baseline,
    load_baseline,
)
from tools.tycoslint.engine import LintReport, lint_paths, registered_rules, resolve_rules

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

DEFAULT_CACHE = Path(".tycoslint-cache")


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The tycoslint argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="tycoslint",
        description="Repository-specific whole-program linter for the TYCOS reproduction.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run (default: all)"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )
    parser.add_argument(
        "--output",
        choices=("text", "json"),
        default="text",
        help="finding format: editor-clickable text (default) or one JSON object per line",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE.name} "
        "next to the package, when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit clean",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        type=Path,
        default=DEFAULT_CACHE,
        help="project-model cache location (default: .tycoslint-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the model cache"
    )
    return parser


def _emit(report: LintReport, output: str) -> None:
    if output == "json":
        for violation in report.violations:
            print(
                json.dumps(
                    {
                        "code": violation.code,
                        "path": violation.path,
                        "line": violation.line,
                        "col": violation.col,
                        "message": violation.message,
                        "severity": violation.severity,
                    },
                    sort_keys=True,
                )
            )
    else:
        for violation in report.violations:
            print(violation.render())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, rule_cls in sorted(registered_rules().items()):
            print(f"{code}  {rule_cls.name:>28}  {rule_cls.description}")
        return EXIT_CLEAN

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("tycoslint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    try:
        rules = resolve_rules(
            select=_split_codes(options.select), ignore=_split_codes(options.ignore)
        )
    except KeyError as exc:
        print(f"tycoslint: error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    targets = [Path(p) for p in options.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        print(
            f"tycoslint: error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    cache_path = None if options.no_cache else options.cache
    report = lint_paths(targets, rules, cache_path=cache_path)

    baseline_path = options.baseline if options.baseline is not None else DEFAULT_BASELINE

    if options.write_baseline:
        baseline_path.write_text(format_baseline(report.violations), encoding="utf-8")
        print(
            f"tycoslint: wrote {len(report.violations)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return EXIT_USAGE if report.parse_errors else EXIT_CLEAN

    if not options.no_baseline and baseline_path.exists():
        try:
            entries = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"tycoslint: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        kept, suppressed, stale = apply_baseline(report.violations, entries)
        report.violations = kept
        report.baselined = suppressed
        for entry in stale:
            print(
                f"tycoslint: warning: stale baseline entry {entry.code} {entry.path} "
                "(matched nothing; remove it)",
                file=sys.stderr,
            )

    _emit(report, options.output)
    for error in report.parse_errors:
        print(f"tycoslint: parse error: {error}", file=sys.stderr)

    if report.parse_errors:
        return EXIT_USAGE
    if report.violations:
        suffix = f" ({report.baselined} baselined)" if report.baselined else ""
        print(
            f"tycoslint: {len(report.violations)} violation(s) found{suffix}",
            file=sys.stderr,
        )
        return EXIT_VIOLATIONS
    return EXIT_CLEAN

"""tycoslint command line interface.

Usage::

    python -m tools.tycoslint src tests
    python -m tools.tycoslint --select TY001,TY004 src
    python -m tools.tycoslint --ignore TY006 src tests
    python -m tools.tycoslint --list-rules

Exit codes follow the pytest convention: 0 = clean, 1 = violations
found, 2 = usage or parse error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

# Importing the rules module populates the registry as a side effect.
import tools.tycoslint.rules  # noqa: F401
from tools.tycoslint.engine import lint_paths, registered_rules, resolve_rules

__all__ = ["main", "build_parser"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The tycoslint argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="tycoslint",
        description="Repository-specific AST linter for the TYCOS reproduction.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run (default: all)"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, rule_cls in sorted(registered_rules().items()):
            print(f"{code}  {rule_cls.name:>18}  {rule_cls.description}")
        return EXIT_CLEAN

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("tycoslint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    try:
        rules = resolve_rules(
            select=_split_codes(options.select), ignore=_split_codes(options.ignore)
        )
    except KeyError as exc:
        print(f"tycoslint: error: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    targets = [Path(p) for p in options.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        print(
            f"tycoslint: error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    report = lint_paths(targets, rules)
    for violation in report.violations:
        print(violation.render())
    for error in report.parse_errors:
        print(f"tycoslint: parse error: {error}", file=sys.stderr)

    if report.parse_errors:
        return EXIT_USAGE
    if report.violations:
        print(f"tycoslint: {len(report.violations)} violation(s) found", file=sys.stderr)
        return EXIT_VIOLATIONS
    return EXIT_CLEAN
